//! Multi-tenant discrete-event co-simulation.
//!
//! [`simulate_tenants`] runs K tenant streams — each with its own
//! compiled schedule, arrival timeline, spin-up window and warmup trim —
//! through **one shared event calendar**, so tenants that share chiplets
//! genuinely contend for them while tenants on disjoint regions behave
//! exactly as if they ran alone. One DES pass yields one tenant-tagged
//! [`PhaseReport`] per stream: per-tenant steady-state statistics
//! (mean + tails, split by tenant in the streamed `ReportBuilder`) plus
//! the offered/dropped frame accounting `npu-fleet`'s admission control
//! and preemption pricing are built on.
//!
//! The engine generalizes the single-class core in [`crate::engine`]:
//!
//! - arrivals from all tenants merge into one global sequence ordered by
//!   `(time, tenant index)` — every frame gets a unique global index, so
//!   job priority `(global frame, item)` is total and tie-free;
//! - item ids are tenant-offset into one global table (durations,
//!   dependents, dependency templates), keeping the hot path dense;
//! - each (chiplet, tenant) pair keeps a virtual root cursor, and each
//!   tenant its own bounded in-flight frame pool, commit ring and
//!   streaming report — per-tenant memory stays O(in-flight frames);
//! - chiplet busy time is global (a shared chiplet is busy no matter
//!   whose frame it serves); each tenant's report carries the busy
//!   fractions of the chiplets **its** schedule uses, normalized by that
//!   tenant's own observed span.
//!
//! A single stream is exactly [`crate::engine::simulate_phases`] with
//! one phase — same event order, bit-identical statistics — and K
//! streams on pairwise-disjoint chiplet regions are bit-identical to K
//! standalone runs, which the tests pin.

use std::cmp::Ordering;
use std::collections::{BTreeMap, BinaryHeap, VecDeque};

use npu_maestro::CostModel;
use npu_mcm::{ChipletId, McmPackage};
use npu_sched::{flatten_items, Schedule, SimItem};
use npu_tensor::Dtype;

use crate::engine::{admission_gate, PhaseReport, Readiness, SimConfig};
use crate::report::ReportBuilder;

/// One tenant's share of a co-simulation: a compiled schedule serving
/// absolute-time frame arrivals under the tenant's [`Readiness`] model.
/// Frames arriving while the tenant's gating chiplets are still spinning
/// up are dropped and counted, exactly like a [`crate::SimPhase`]
/// boundary.
#[derive(Debug, Clone)]
pub struct TenantStream<'a> {
    /// The tenant's compiled schedule (its chiplet region is implied by
    /// the schedule's shard assignments).
    pub schedule: &'a Schedule,
    /// Absolute arrival timestamps of the tenant's frames
    /// (non-decreasing).
    pub times: Vec<f64>,
    /// When the tenant's region accepts frames: a barrier, or a
    /// make-before-break per-chiplet readiness schedule (a tenant whose
    /// region is re-programmed in place keeps serving on its unchanged
    /// chiplets).
    pub readiness: Readiness,
    /// Symmetric steady-state trim for the tenant's report (see
    /// [`crate::SimConfig::warmup`]); `None` derives the default trim
    /// from the served frame count once admission drops are known.
    pub warmup: Option<usize>,
    /// Boundary instant at which the tenant's in-flight frames are
    /// flushed (its region is quiesced by a full-barrier handover);
    /// `None` lets frames drain freely.
    pub cutoff: Option<f64>,
}

/// Job priority: earliest global frame first, then item (topological)
/// order. Global frame indices are unique across tenants, so ordering is
/// total. Tenant index, tenant-local frame and pool slot ride along as
/// payload.
#[derive(Debug, Clone, Copy)]
struct Job {
    /// Global arrival index of the frame (unique across tenants).
    g: usize,
    /// Global item index (tenant offset + local topological index).
    item: u32,
    /// Tenant index (payload, not priority).
    class: u32,
    /// Tenant-local frame index (payload).
    frame: u32,
    /// Index of the frame's recycled pool slot in its tenant's pool
    /// (payload).
    slot: u32,
}

impl PartialEq for Job {
    fn eq(&self, other: &Self) -> bool {
        (self.g, self.item) == (other.g, other.item)
    }
}

impl Eq for Job {}

impl Ord for Job {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first.
        (other.g, other.item).cmp(&(self.g, self.item))
    }
}

impl PartialOrd for Job {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// One item-completion event on the shared calendar (arrivals are walked
/// with a cursor over the merged sequence, never heaped).
#[derive(Debug, Clone, Copy, PartialEq)]
struct Scheduled {
    time: f64,
    seq: u64,
    /// Dense chiplet index the job ran on.
    chiplet: u32,
    job: Job,
}

impl Eq for Scheduled {}

impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap by time, then insertion order for determinism.
        other
            .time
            .total_cmp(&self.time)
            .then(other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// One pooled in-flight frame of one tenant: tenant-local per-item
/// remaining-dependency counters plus the count of items left.
struct FrameSlot {
    deps_left: Vec<u32>,
    remaining: u32,
}

/// Co-simulates K tenant streams on one package through a shared event
/// calendar, returning one tenant-tagged [`PhaseReport`] per stream (in
/// input order): per-tenant steady-state statistics over the frames that
/// were actually served, plus offered/dropped counts for the spin-up
/// window.
///
/// Tenants whose schedules touch the same chiplet contend for it in
/// global `(frame, item)` priority order; tenants on disjoint regions
/// are bit-identical to standalone [`crate::simulate_phases`] runs.
/// Each tenant's report exposes busy fractions for the chiplets its own
/// schedule uses — on a shared chiplet that is the chiplet's *total*
/// utilization over the tenant's observed span, since the silicon does
/// not idle between tenants.
///
/// # Panics
///
/// Panics if a stream's schedule is empty or its times are not finite
/// and non-decreasing, or if `ready_at` is not finite.
pub fn simulate_tenants(
    streams: &[TenantStream<'_>],
    pkg: &McmPackage,
    model: &dyn CostModel,
    dtype: Dtype,
) -> Vec<PhaseReport> {
    if streams.is_empty() {
        return Vec::new();
    }
    // Flatten each distinct schedule once (keying on the reference's
    // address is sound: every stream borrows its schedule for the whole
    // call, so two equal pointers are the same live `Schedule`).
    let mut flat_cache: BTreeMap<*const Schedule, Vec<SimItem>> = BTreeMap::new();
    for s in streams {
        flat_cache
            .entry(s.schedule as *const Schedule)
            .or_insert_with(|| flatten_items(s.schedule, pkg, model, dtype));
    }
    let class_items: Vec<&Vec<SimItem>> = streams
        .iter()
        .map(|s| &flat_cache[&(s.schedule as *const Schedule)])
        .collect();

    // Per-tenant spin-up drops: times are non-decreasing, so the served
    // frames are exactly the suffix arriving at or after the tenant's
    // admission gate (see `crate::engine::admission_gate` — the
    // wavefront bound holds a fortiori under cross-tenant contention,
    // which only delays starts further).
    let mut offered = Vec::with_capacity(streams.len());
    let mut dropped = Vec::with_capacity(streams.len());
    let mut gates = Vec::with_capacity(streams.len());
    let mut served: Vec<Vec<f64>> = Vec::with_capacity(streams.len());
    for (s, items) in streams.iter().zip(&class_items) {
        assert!(!items.is_empty(), "cannot co-simulate an empty schedule");
        assert!(
            s.times.windows(2).all(|w| w[0] <= w[1]) && s.times.iter().all(|t| t.is_finite()),
            "tenant arrivals must be finite and non-decreasing"
        );
        let gate = admission_gate(items, &s.readiness);
        assert!(gate.is_finite(), "tenant readiness must be finite");
        let first_served = s.times.partition_point(|&t| t < gate);
        offered.push(s.times.len());
        dropped.push(first_served);
        gates.push(gate);
        served.push(s.times[first_served..].to_vec());
    }

    let engine = MultiEngine::new(&class_items, served, streams);
    let reports = engine.run();
    reports
        .into_iter()
        .zip(offered.into_iter().zip(dropped).zip(gates))
        .map(
            |((report, flushed), ((offered, dropped), gate))| PhaseReport {
                report,
                offered,
                dropped,
                flushed,
                admitted_from: gate,
            },
        )
        .collect()
}

/// The shared-calendar multi-class DES core. See the module docs for the
/// generalization from [`crate::engine`]'s single-class engine.
struct MultiEngine {
    // Global item tables (tenant-offset, immutable during the run).
    /// Global item offset of each tenant.
    offsets: Vec<usize>,
    /// Item count of each tenant.
    n_items: Vec<usize>,
    /// Sorted distinct chiplets hosting work; dense index = position.
    chiplet_ids: Vec<ChipletId>,
    /// Dense chiplet index of each global item.
    chiplet_of: Vec<u32>,
    /// Service time of each global item in seconds.
    durations: Vec<f64>,
    /// Reverse dependency lists (global ids, ascending item order; all
    /// edges stay within one tenant's item range).
    dependents: Vec<Vec<u32>>,
    /// Dependency counts, copied into a pool slot on (re)allocation.
    deps_template: Vec<u32>,
    /// Per-chiplet root items grouped by tenant, ascending tenant then
    /// item order: the virtual-cursor groups.
    class_roots: Vec<Vec<(u32, Vec<u32>)>>,
    /// Dense chiplet index of each tenant's root items in item order:
    /// the dispatch fan-out of one frame arrival.
    root_dispatch: Vec<Vec<u32>>,
    /// Sorted distinct chiplets each tenant's schedule uses (for the
    /// per-tenant busy map).
    class_chiplets: Vec<Vec<ChipletId>>,

    // Merged arrivals.
    /// All served arrivals ordered by (time, tenant, tenant frame);
    /// position = global frame index.
    merged: Vec<(f64, u32, u32)>,
    /// Per-tenant served arrival times (tenant-frame indexed).
    served: Vec<Vec<f64>>,
    /// Tenant frame → global frame index.
    frame_g: Vec<Vec<usize>>,

    // Event calendar: item completions only.
    heap: BinaryHeap<Scheduled>,
    seq: u64,
    /// Next-arrival cursor into `merged`.
    arrived: usize,
    /// Per-tenant count of arrived frames.
    class_arrived: Vec<usize>,

    // Per-chiplet executors (dense).
    /// Ready non-root jobs per chiplet (roots stay virtual).
    queues: Vec<BinaryHeap<Job>>,
    busy_until: Vec<f64>,
    busy_time: Vec<f64>,
    /// Virtual root cursors, one per `class_roots[c]` group: the
    /// earliest not-yet-started root job of tenant `k` on chiplet `c`
    /// is `(frame_g[k][v_frame], roots[v_idx])`.
    v_frame: Vec<Vec<usize>>,
    v_idx: Vec<Vec<usize>>,

    // Per-tenant bounded in-flight frame pools.
    pool: Vec<Vec<FrameSlot>>,
    free_slots: Vec<Vec<u32>>,
    slot_of_frame: Vec<BTreeMap<u32, u32>>,

    // Per-tenant streaming reports.
    /// Completion reorder rings (tenant-frame order; NaN = in flight).
    commit: Vec<VecDeque<f64>>,
    commit_next: Vec<usize>,
    builders: Vec<ReportBuilder>,
}

impl MultiEngine {
    fn new(
        class_items: &[&Vec<SimItem>],
        served: Vec<Vec<f64>>,
        streams: &[TenantStream<'_>],
    ) -> MultiEngine {
        let k_tenants = class_items.len();
        let mut offsets = Vec::with_capacity(k_tenants);
        let mut n_items = Vec::with_capacity(k_tenants);
        let mut n_total = 0usize;
        for items in class_items {
            offsets.push(n_total);
            n_items.push(items.len());
            n_total += items.len();
        }

        let mut chiplet_ids: Vec<ChipletId> = class_items
            .iter()
            .flat_map(|items| items.iter().map(|it| it.chiplet))
            .collect();
        chiplet_ids.sort_unstable();
        chiplet_ids.dedup();
        let dense = |c: ChipletId| {
            chiplet_ids
                .binary_search(&c)
                .expect("chiplet registered by prep") as u32
        };

        let mut chiplet_of = Vec::with_capacity(n_total);
        let mut durations = Vec::with_capacity(n_total);
        let mut deps_template = Vec::with_capacity(n_total);
        let mut dependents: Vec<Vec<u32>> = vec![Vec::new(); n_total];
        let mut class_roots: Vec<Vec<(u32, Vec<u32>)>> = vec![Vec::new(); chiplet_ids.len()];
        let mut root_dispatch: Vec<Vec<u32>> = vec![Vec::new(); k_tenants];
        let mut class_chiplets: Vec<Vec<ChipletId>> = Vec::with_capacity(k_tenants);
        for (k, items) in class_items.iter().enumerate() {
            let off = offsets[k];
            for (i, item) in items.iter().enumerate() {
                let c = dense(item.chiplet);
                chiplet_of.push(c);
                durations.push(item.duration.as_secs());
                deps_template.push(item.deps.len() as u32);
                for &d in &item.deps {
                    dependents[off + d].push((off + i) as u32);
                }
                if item.deps.is_empty() {
                    let gi = (off + i) as u32;
                    match class_roots[c as usize].last_mut() {
                        Some((kk, v)) if *kk == k as u32 => v.push(gi),
                        _ => class_roots[c as usize].push((k as u32, vec![gi])),
                    }
                    root_dispatch[k].push(c);
                }
            }
            let mut used: Vec<ChipletId> = items.iter().map(|it| it.chiplet).collect();
            used.sort_unstable();
            used.dedup();
            class_chiplets.push(used);
        }

        // Merge the served arrivals: global frame order is (time, tenant,
        // tenant frame) — total because each tenant's times are
        // non-decreasing, and arrivals at identical times resolve by
        // tenant input order.
        let mut merged: Vec<(f64, u32, u32)> = Vec::new();
        for (k, ts) in served.iter().enumerate() {
            merged.extend(ts.iter().enumerate().map(|(f, &t)| (t, k as u32, f as u32)));
        }
        merged.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)).then(a.2.cmp(&b.2)));
        let mut frame_g: Vec<Vec<usize>> = served.iter().map(|ts| vec![0; ts.len()]).collect();
        for (g, &(_, k, f)) in merged.iter().enumerate() {
            frame_g[k as usize][f as usize] = g;
        }

        let n_chiplets = chiplet_ids.len();
        let v_frame: Vec<Vec<usize>> = class_roots.iter().map(|g| vec![0; g.len()]).collect();
        let v_idx: Vec<Vec<usize>> = class_roots.iter().map(|g| vec![0; g.len()]).collect();
        let builders = served
            .iter()
            .zip(streams)
            .map(|(ts, s)| {
                // Post-drop trim: `None` derives the default from the
                // frames that actually entered the pipeline.
                let warmup = s
                    .warmup
                    .unwrap_or_else(|| SimConfig::default_warmup(ts.len()));
                ReportBuilder::new(ts.len(), warmup, s.cutoff)
            })
            .collect();
        MultiEngine {
            offsets,
            n_items,
            chiplet_of,
            durations,
            dependents,
            deps_template,
            class_roots,
            root_dispatch,
            class_chiplets,
            merged,
            served,
            frame_g,
            heap: BinaryHeap::new(),
            seq: 0,
            arrived: 0,
            class_arrived: vec![0; k_tenants],
            queues: (0..n_chiplets).map(|_| BinaryHeap::new()).collect(),
            busy_until: vec![0.0; n_chiplets],
            busy_time: vec![0.0; n_chiplets],
            v_frame,
            v_idx,
            pool: (0..k_tenants).map(|_| Vec::new()).collect(),
            free_slots: vec![Vec::new(); k_tenants],
            slot_of_frame: vec![BTreeMap::new(); k_tenants],
            commit: vec![VecDeque::new(); k_tenants],
            commit_next: vec![0; k_tenants],
            builders,
            chiplet_ids,
        }
    }

    /// Runs the co-simulation, returning each tenant's report and its
    /// boundary-flushed frame count.
    fn run(mut self) -> Vec<(crate::report::SimReport, usize)> {
        loop {
            // Interleave the merged arrival cursor with the completion
            // calendar in time order; `<=` lets arrivals win ties,
            // matching the single-class engine's event order.
            let arrival_due = match (self.merged.get(self.arrived), self.heap.peek()) {
                (Some(&(t, _, _)), Some(top)) => t <= top.time,
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => break,
            };
            if arrival_due {
                self.process_arrival();
            } else {
                self.process_completion();
            }
        }
        debug_assert!(
            self.commit_next
                .iter()
                .zip(&self.served)
                .all(|(&n, ts)| n == ts.len()),
            "all frames committed"
        );
        debug_assert!(
            self.slot_of_frame.iter().all(|m| m.is_empty()),
            "all slots recycled"
        );

        let mut reports = Vec::with_capacity(self.builders.len());
        for (k, builder) in self.builders.into_iter().enumerate() {
            // The tenant's view of the silicon: total busy seconds of
            // each chiplet its schedule uses; the builder normalizes by
            // the tenant's own observed span.
            let busy: BTreeMap<ChipletId, f64> = self.class_chiplets[k]
                .iter()
                .map(|&c| {
                    let d = self
                        .chiplet_ids
                        .binary_search(&c)
                        .expect("chiplet registered by prep");
                    (c, self.busy_time[d])
                })
                .collect();
            let flushed = builder.flushed();
            reports.push((builder.finish(&busy), flushed));
        }
        reports
    }

    /// Admits the next merged frame: advances the cursors and offers
    /// each of its tenant's root chiplets a dispatch, in item order.
    fn process_arrival(&mut self) {
        let (now, k, _) = self.merged[self.arrived];
        let k = k as usize;
        self.arrived += 1;
        self.class_arrived[k] += 1;
        for i in 0..self.root_dispatch[k].len() {
            self.dispatch(self.root_dispatch[k][i] as usize, now);
        }
    }

    /// Starts the next ready job on chiplet `c` if it is free: the
    /// earliest of the explicit queue head and every tenant's virtual
    /// root cursor by (global frame, item). Roots never sit in the
    /// explicit queue and global frame indices are unique per frame, so
    /// no two candidates tie.
    fn dispatch(&mut self, c: usize, now: f64) {
        if self.busy_until[c] > now {
            return;
        }
        let mut v: Option<(usize, u32, usize)> = None;
        for ei in 0..self.class_roots[c].len() {
            let (k, ref roots) = self.class_roots[c][ei];
            let vf = self.v_frame[c][ei];
            if vf < self.class_arrived[k as usize] {
                let g = self.frame_g[k as usize][vf];
                let item = roots[self.v_idx[c][ei]];
                if v.is_none_or(|(bg, bi, _)| (g, item) < (bg, bi)) {
                    v = Some((g, item, ei));
                }
            }
        }
        let e = self.queues[c].peek().map(|j| (j.g, j.item));
        let job = match (e, v) {
            (Some(e), Some((vg, vi, _))) if e <= (vg, vi) => self.queues[c].pop().expect("peeked"),
            (Some(_), None) => self.queues[c].pop().expect("peeked"),
            (None, Some((_, _, ei))) | (Some(_), Some((_, _, ei))) => self.take_virtual(c, ei),
            (None, None) => return,
        };
        self.start(c, job, now);
    }

    /// Materializes a virtual root cursor's head into a real job,
    /// allocating (or reusing) the frame's pool slot in its tenant's
    /// pool — the first moment the frame costs any per-frame memory.
    fn take_virtual(&mut self, c: usize, ei: usize) -> Job {
        let k = self.class_roots[c][ei].0 as usize;
        let frame = self.v_frame[c][ei];
        let item = self.class_roots[c][ei].1[self.v_idx[c][ei]];
        self.v_idx[c][ei] += 1;
        if self.v_idx[c][ei] == self.class_roots[c][ei].1.len() {
            self.v_idx[c][ei] = 0;
            self.v_frame[c][ei] += 1;
        }
        let g = self.frame_g[k][frame];
        let slot = self.slot_for(k, frame as u32);
        Job {
            g,
            item,
            class: k as u32,
            frame: frame as u32,
            slot,
        }
    }

    /// The frame's slot in its tenant's pool: existing, recycled off the
    /// tenant's free list, or freshly grown.
    fn slot_for(&mut self, k: usize, frame: u32) -> u32 {
        if let Some(&s) = self.slot_of_frame[k].get(&frame) {
            return s;
        }
        let off = self.offsets[k];
        let len = self.n_items[k];
        let s = match self.free_slots[k].pop() {
            Some(s) => {
                let slot = &mut self.pool[k][s as usize];
                slot.deps_left
                    .copy_from_slice(&self.deps_template[off..off + len]);
                slot.remaining = len as u32;
                s
            }
            None => {
                self.pool[k].push(FrameSlot {
                    deps_left: self.deps_template[off..off + len].to_vec(),
                    remaining: len as u32,
                });
                (self.pool[k].len() - 1) as u32
            }
        };
        self.slot_of_frame[k].insert(frame, s);
        s
    }

    fn start(&mut self, c: usize, job: Job, now: f64) {
        let dur = self.durations[job.item as usize];
        self.busy_until[c] = now + dur;
        self.busy_time[c] += dur;
        self.seq += 1;
        self.heap.push(Scheduled {
            time: now + dur,
            seq: self.seq,
            chiplet: c as u32,
            job,
        });
    }

    fn process_completion(&mut self) {
        let Scheduled {
            time, chiplet, job, ..
        } = self.heap.pop().expect("completion event due");
        let k = job.class as usize;
        let s = job.slot as usize;
        let item = job.item as usize;
        self.pool[k][s].remaining -= 1;
        if self.pool[k][s].remaining == 0 {
            // The frame's last item has no incomplete dependents, so the
            // slot retires immediately.
            debug_assert!(self.dependents[item].is_empty(), "last item has dependents");
            self.slot_of_frame[k].remove(&job.frame);
            self.free_slots[k].push(job.slot);
            self.commit_completion(k, job.frame as usize, time);
        } else {
            let off = self.offsets[k];
            for di in 0..self.dependents[item].len() {
                let succ = self.dependents[item][di] as usize;
                self.pool[k][s].deps_left[succ - off] -= 1;
                if self.pool[k][s].deps_left[succ - off] == 0 {
                    let c2 = self.chiplet_of[succ] as usize;
                    self.queues[c2].push(Job {
                        g: job.g,
                        item: succ as u32,
                        class: job.class,
                        frame: job.frame,
                        slot: job.slot,
                    });
                    self.dispatch(c2, time);
                }
            }
        }
        self.dispatch(chiplet as usize, time);
    }

    /// Parks an out-of-order completion in the tenant's reorder ring and
    /// drains every now-contiguous frame into its streaming report.
    fn commit_completion(&mut self, k: usize, frame: usize, time: f64) {
        let pos = frame - self.commit_next[k];
        if pos >= self.commit[k].len() {
            self.commit[k].resize(pos + 1, f64::NAN);
        }
        self.commit[k][pos] = time;
        while let Some(&front) = self.commit[k].front() {
            if front.is_nan() {
                break;
            }
            self.commit[k].pop_front();
            let f = self.commit_next[k];
            self.builders[k].record(f, self.served[k][f], front);
            self.commit_next[k] += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{simulate_phases, SimPhase};
    use npu_dnn::models::attention::{fusion_block, FusionConfig};
    use npu_dnn::StageKind;
    use npu_maestro::FittedMaestro;
    use npu_sched::{ModelPlan, StagePlan};

    fn single_chiplet_schedule(c: ChipletId) -> Schedule {
        let g = fusion_block(&FusionConfig::spatial_default());
        Schedule {
            stages: vec![StagePlan {
                kind: StageKind::SpatialFusion,
                models: vec![ModelPlan::on_single_chiplet("s", g, c)],
                region: vec![c],
            }],
        }
    }

    fn periodic(frames: usize, interval: f64, offset: f64) -> Vec<f64> {
        (0..frames).map(|f| offset + f as f64 * interval).collect()
    }

    /// Tenants on disjoint chiplet regions are bit-identical to their
    /// standalone phased runs: sharing a calendar costs nothing when
    /// nothing is actually shared.
    #[test]
    fn disjoint_regions_match_standalone_runs() {
        let pkg = McmPackage::simba_6x6();
        let model = FittedMaestro::new();
        let s0 = single_chiplet_schedule(ChipletId(0));
        let s1 = single_chiplet_schedule(ChipletId(7));
        let t0 = periodic(16, 0.5, 0.0);
        let t1 = periodic(12, 0.7, 0.1);
        let co = simulate_tenants(
            &[
                TenantStream {
                    schedule: &s0,
                    times: t0.clone(),
                    readiness: Readiness::Barrier(0.0),
                    warmup: Some(2),
                    cutoff: None,
                },
                TenantStream {
                    schedule: &s1,
                    times: t1.clone(),
                    readiness: Readiness::Barrier(0.0),
                    warmup: Some(2),
                    cutoff: None,
                },
            ],
            &pkg,
            &model,
            Dtype::Fp16,
        );
        let alone0 = simulate_phases(
            &[SimPhase {
                schedule: &s0,
                times: t0,
                readiness: Readiness::Barrier(0.0),
                warmup: Some(2),
                cutoff: None,
            }],
            &pkg,
            &model,
            Dtype::Fp16,
        );
        let alone1 = simulate_phases(
            &[SimPhase {
                schedule: &s1,
                times: t1,
                readiness: Readiness::Barrier(0.0),
                warmup: Some(2),
                cutoff: None,
            }],
            &pkg,
            &model,
            Dtype::Fp16,
        );
        assert_eq!(co[0], alone0[0]);
        assert_eq!(co[1], alone1[0]);
    }

    /// Two tenants contending for one chiplet: the co-run is strictly
    /// slower than either tenant alone, and the higher-priority frames
    /// (earlier global order on ties) still complete.
    #[test]
    fn shared_chiplet_contention_increases_latency() {
        let pkg = McmPackage::simba_6x6();
        let model = FittedMaestro::new();
        let s = single_chiplet_schedule(ChipletId(0));
        // ~366 ms service time; each tenant alone at 0.5 s intervals is
        // arrival-limited, together they oversubscribe the chiplet.
        let t0 = periodic(16, 0.5, 0.0);
        let t1 = periodic(16, 0.5, 0.0);
        let co = simulate_tenants(
            &[
                TenantStream {
                    schedule: &s,
                    times: t0.clone(),
                    readiness: Readiness::Barrier(0.0),
                    warmup: Some(2),
                    cutoff: None,
                },
                TenantStream {
                    schedule: &s,
                    times: t1,
                    readiness: Readiness::Barrier(0.0),
                    warmup: Some(2),
                    cutoff: None,
                },
            ],
            &pkg,
            &model,
            Dtype::Fp16,
        );
        let alone = simulate_phases(
            &[SimPhase {
                schedule: &s,
                times: t0,
                readiness: Readiness::Barrier(0.0),
                warmup: Some(2),
                cutoff: None,
            }],
            &pkg,
            &model,
            Dtype::Fp16,
        );
        for rep in &co {
            assert!(
                rep.report.mean_latency > alone[0].report.mean_latency,
                "contention must raise latency: co {} vs alone {}",
                rep.report.mean_latency,
                alone[0].report.mean_latency
            );
        }
        // Tenant 0 wins every same-time tie (lower tenant index), so it
        // queues behind at most one tenant-1 frame; tenant 1 waits for
        // tenant 0's whole backlog and runs strictly later.
        assert!(co[0].report.mean_latency < co[1].report.mean_latency);
    }

    /// Per-tenant spin-up windows drop exactly the frames arriving
    /// before that tenant's `ready_at`, and the balance holds.
    #[test]
    fn ready_at_drops_are_per_tenant() {
        let pkg = McmPackage::simba_6x6();
        let model = FittedMaestro::new();
        let s0 = single_chiplet_schedule(ChipletId(0));
        let s1 = single_chiplet_schedule(ChipletId(1));
        let co = simulate_tenants(
            &[
                TenantStream {
                    schedule: &s0,
                    times: periodic(10, 0.5, 0.0),
                    readiness: Readiness::Barrier(0.0),
                    warmup: Some(1),
                    cutoff: None,
                },
                TenantStream {
                    schedule: &s1,
                    times: periodic(10, 0.5, 0.0),
                    readiness: Readiness::Barrier(1.1),
                    warmup: Some(1),
                    cutoff: None,
                },
            ],
            &pkg,
            &model,
            Dtype::Fp16,
        );
        assert_eq!(co[0].dropped, 0);
        assert_eq!(co[1].dropped, 3, "frames at 0.0, 0.5, 1.0 dropped");
        for rep in &co {
            assert_eq!(rep.served() + rep.dropped, rep.offered);
        }
        assert_eq!(co[1].report.measured_frames, 7 - 2);
    }

    /// The co-simulation is deterministic: same inputs, same bits.
    #[test]
    fn co_simulation_is_deterministic() {
        let pkg = McmPackage::simba_6x6();
        let model = FittedMaestro::new();
        let s = single_chiplet_schedule(ChipletId(0));
        let s2 = single_chiplet_schedule(ChipletId(2));
        let run = || {
            simulate_tenants(
                &[
                    TenantStream {
                        schedule: &s,
                        times: periodic(12, 0.4, 0.0),
                        readiness: Readiness::Barrier(0.0),
                        warmup: Some(2),
                        cutoff: None,
                    },
                    TenantStream {
                        schedule: &s2,
                        times: periodic(12, 0.4, 0.0),
                        readiness: Readiness::Barrier(0.0),
                        warmup: Some(2),
                        cutoff: None,
                    },
                ],
                &pkg,
                &model,
                Dtype::Fp16,
            )
        };
        assert_eq!(run(), run());
    }

    /// A single stream through the multi-engine is bit-identical to the
    /// single-class phased engine.
    #[test]
    fn single_stream_matches_phased_engine() {
        let pkg = McmPackage::simba_6x6();
        let model = FittedMaestro::new();
        let s = single_chiplet_schedule(ChipletId(3));
        let times = periodic(20, 0.45, 0.2);
        let multi = simulate_tenants(
            &[TenantStream {
                schedule: &s,
                times: times.clone(),
                readiness: Readiness::Barrier(0.3),
                warmup: Some(3),
                cutoff: None,
            }],
            &pkg,
            &model,
            Dtype::Fp16,
        );
        let phased = simulate_phases(
            &[SimPhase {
                schedule: &s,
                times,
                readiness: Readiness::Barrier(0.3),
                warmup: Some(3),
                cutoff: None,
            }],
            &pkg,
            &model,
            Dtype::Fp16,
        );
        assert_eq!(multi[0], phased[0]);
    }

    #[test]
    fn empty_stream_list_is_empty() {
        let pkg = McmPackage::simba_6x6();
        let model = FittedMaestro::new();
        assert!(simulate_tenants(&[], &pkg, &model, Dtype::Fp16).is_empty());
    }
}
