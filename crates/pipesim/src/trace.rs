//! Loaders for recorded camera-timestamp logs.
//!
//! Fleet tooling exports frame-arrival logs in two common shapes: a CSV
//! column of timestamps and JSON-lines records with a timestamp field.
//! Both loaders parse from **strings** (callers do the I/O), so the
//! simulator stays offline-friendly and testable with in-repo fixtures,
//! and both reject the malformed inputs real logs contain — non-numeric
//! cells, NaN/infinite times, clock steps backwards — with a typed error
//! naming the offending line instead of panicking deep in the engine.

use std::fmt;

use npu_tensor::Seconds;
use serde::Value;

use crate::arrivals::Arrivals;

/// Why a recorded trace could not be loaded.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceError {
    /// The input held no timestamps at all.
    Empty,
    /// A line could not be parsed as a timestamp record (1-based line).
    Malformed {
        /// 1-based line number.
        line: usize,
        /// What was found there.
        found: String,
    },
    /// A timestamp was NaN, infinite or negative.
    NonFinite {
        /// 1-based line number.
        line: usize,
        /// The offending value.
        value: f64,
    },
    /// A timestamp stepped backwards relative to its predecessor.
    NonMonotonic {
        /// 1-based line number.
        line: usize,
        /// The offending value.
        value: f64,
        /// The preceding timestamp it undercuts.
        previous: f64,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Empty => write!(f, "trace holds no timestamps"),
            TraceError::Malformed { line, found } => {
                write!(f, "line {line}: expected a timestamp, found `{found}`")
            }
            TraceError::NonFinite { line, value } => {
                write!(
                    f,
                    "line {line}: timestamp {value} is not finite and non-negative"
                )
            }
            TraceError::NonMonotonic {
                line,
                value,
                previous,
            } => write!(
                f,
                "line {line}: timestamp {value} steps backwards (previous was {previous})"
            ),
        }
    }
}

impl std::error::Error for TraceError {}

impl Arrivals {
    /// Parses a CSV camera-timestamp log into a validated
    /// [`Arrivals::Trace`]. The first comma-separated field of each line
    /// is the arrival time in seconds; empty lines and `#` comments are
    /// skipped, and a single non-numeric header line (e.g.
    /// `timestamp_s,camera`) is tolerated at the top.
    ///
    /// # Examples
    ///
    /// ```
    /// use npu_pipesim::Arrivals;
    ///
    /// let log = "timestamp_s,camera\n0.0,front\n0.033,front\n0.070,front\n";
    /// let trace = Arrivals::from_csv_str(log).unwrap();
    /// assert_eq!(trace.times(2), vec![0.0, 0.033]);
    /// ```
    ///
    /// # Errors
    ///
    /// [`TraceError`] on an empty log, a malformed cell, or a non-finite,
    /// negative or backwards timestamp.
    pub fn from_csv_str(text: &str) -> Result<Arrivals, TraceError> {
        let mut times = Vec::new();
        let mut header_budget = 1usize;
        for (i, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let field = line.split(',').next().unwrap_or("").trim();
            match field.parse::<f64>() {
                Ok(t) => {
                    push_checked(&mut times, t, i + 1)?;
                    header_budget = 0;
                }
                // Tolerate exactly one leading header row; any further
                // non-numeric line is malformed — a log full of, say,
                // ISO-8601 datetimes must fail loudly, not silently
                // shrink to its few numeric lines.
                Err(_) if header_budget > 0 && field.chars().any(|c| c.is_ascii_alphabetic()) => {
                    header_budget = 0;
                }
                Err(_) => {
                    return Err(TraceError::Malformed {
                        line: i + 1,
                        found: field.to_string(),
                    })
                }
            }
        }
        finish(times)
    }

    /// Parses a JSON-lines camera log into a validated
    /// [`Arrivals::Trace`]. Each non-empty line is either a bare number
    /// or an object carrying the arrival time (in seconds) under a `t`,
    /// `timestamp` or `timestamp_s` key.
    ///
    /// # Examples
    ///
    /// ```
    /// use npu_pipesim::Arrivals;
    ///
    /// let log = "{\"t\": 0.0}\n{\"t\": 0.05}\n";
    /// let trace = Arrivals::from_jsonl_str(log).unwrap();
    /// assert_eq!(trace.times(2), vec![0.0, 0.05]);
    /// ```
    ///
    /// # Errors
    ///
    /// [`TraceError`] on an empty log, an unparsable line or record, or a
    /// non-finite, negative or backwards timestamp.
    pub fn from_jsonl_str(text: &str) -> Result<Arrivals, TraceError> {
        let mut times = Vec::new();
        for (i, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() {
                continue;
            }
            let malformed = || TraceError::Malformed {
                line: i + 1,
                found: line.to_string(),
            };
            let value: Value = serde_json::from_str(line).map_err(|_| malformed())?;
            let t = match &value {
                Value::Object(_) => ["t", "timestamp", "timestamp_s"]
                    .iter()
                    .find_map(|k| value.get(k))
                    .and_then(Value::as_f64),
                _ => value.as_f64(),
            }
            .ok_or_else(malformed)?;
            push_checked(&mut times, t, i + 1)?;
        }
        finish(times)
    }
}

/// Appends one parsed timestamp, enforcing finiteness, non-negativity and
/// monotonicity against the previously accepted value.
fn push_checked(times: &mut Vec<Seconds>, t: f64, line: usize) -> Result<(), TraceError> {
    if !t.is_finite() || t < 0.0 {
        return Err(TraceError::NonFinite { line, value: t });
    }
    if let Some(prev) = times.last() {
        if t < prev.as_secs() {
            return Err(TraceError::NonMonotonic {
                line,
                value: t,
                previous: prev.as_secs(),
            });
        }
    }
    times.push(Seconds::new(t));
    Ok(())
}

/// Wraps accepted timestamps into a trace, rejecting empty logs.
fn finish(times: Vec<Seconds>) -> Result<Arrivals, TraceError> {
    if times.is_empty() {
        return Err(TraceError::Empty);
    }
    Ok(Arrivals::trace(times))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_skips_header_comments_and_blank_lines() {
        let log =
            "# exported by fleet-tool v3\ntimestamp_s,camera\n\n0.0,front\n0.05,front\n0.1,rear\n";
        let a = Arrivals::from_csv_str(log).unwrap();
        assert_eq!(a.times(3), vec![0.0, 0.05, 0.1]);
    }

    #[test]
    fn csv_without_header_parses_bare_column() {
        let a = Arrivals::from_csv_str("0.0\n0.033\n0.066\n").unwrap();
        assert_eq!(a.times(3), vec![0.0, 0.033, 0.066]);
    }

    #[test]
    fn csv_rejects_non_monotonic_with_line_number() {
        let err = Arrivals::from_csv_str("0.0\n0.2\n0.1\n").unwrap_err();
        assert_eq!(
            err,
            TraceError::NonMonotonic {
                line: 3,
                value: 0.1,
                previous: 0.2
            }
        );
        assert!(err.to_string().contains("line 3"));
    }

    #[test]
    fn csv_rejects_non_finite_and_negative() {
        let err = Arrivals::from_csv_str("0.0\nNaN\n").unwrap_err();
        assert!(
            matches!(err, TraceError::NonFinite { line: 2, .. }),
            "{err}"
        );
        let err = Arrivals::from_csv_str("0.0\ninf\n").unwrap_err();
        assert!(
            matches!(err, TraceError::NonFinite { line: 2, .. }),
            "{err}"
        );
        let err = Arrivals::from_csv_str("-0.5\n").unwrap_err();
        assert!(
            matches!(err, TraceError::NonFinite { line: 1, .. }),
            "{err}"
        );
    }

    #[test]
    fn csv_rejects_garbage_after_data_starts() {
        let err = Arrivals::from_csv_str("0.0\nwhoops\n").unwrap_err();
        assert_eq!(
            err,
            TraceError::Malformed {
                line: 2,
                found: "whoops".to_string()
            }
        );
    }

    /// Only one header line is tolerated: a log full of non-numeric
    /// rows (e.g. ISO-8601 datetimes) must fail loudly instead of
    /// silently shrinking to its few parseable lines.
    #[test]
    fn csv_rejects_a_second_non_numeric_line() {
        let err =
            Arrivals::from_csv_str("timestamp_s\n2024-01-01T08:00:00,front\n0.5\n").unwrap_err();
        assert!(
            matches!(err, TraceError::Malformed { line: 2, .. }),
            "{err}"
        );
    }

    #[test]
    fn empty_inputs_are_rejected() {
        assert_eq!(Arrivals::from_csv_str("").unwrap_err(), TraceError::Empty);
        assert_eq!(
            Arrivals::from_csv_str("# only comments\n").unwrap_err(),
            TraceError::Empty
        );
        assert_eq!(
            Arrivals::from_jsonl_str("\n\n").unwrap_err(),
            TraceError::Empty
        );
    }

    #[test]
    fn jsonl_accepts_objects_and_bare_numbers() {
        let a = Arrivals::from_jsonl_str("{\"t\": 0.0}\n{\"timestamp\": 0.04}\n0.09\n").unwrap();
        assert_eq!(a.times(3), vec![0.0, 0.04, 0.09]);
    }

    #[test]
    fn jsonl_rejects_records_without_a_timestamp() {
        let err = Arrivals::from_jsonl_str("{\"camera\": \"front\"}\n").unwrap_err();
        assert!(
            matches!(err, TraceError::Malformed { line: 1, .. }),
            "{err}"
        );
        let err = Arrivals::from_jsonl_str("not json\n").unwrap_err();
        assert!(
            matches!(err, TraceError::Malformed { line: 1, .. }),
            "{err}"
        );
    }

    #[test]
    fn jsonl_rejects_backwards_clocks() {
        let err = Arrivals::from_jsonl_str("{\"t\": 1.0}\n{\"t\": 0.5}\n").unwrap_err();
        assert!(
            matches!(err, TraceError::NonMonotonic { line: 2, .. }),
            "{err}"
        );
    }
}
