//! Streaming tail-latency percentiles with fixed memory.
//!
//! Datacenter accelerator evaluation is built around p99 latency under a
//! response-time bound, and safety-critical perception has the same
//! shape: a package that meets its latency target *on average* can still
//! drop frames at the p99 under urban-dense bursts. [`Quantiles`] lets
//! [`SimReport`](crate::SimReport) record p50/p95/p99/p99.9 frame
//! latency without keeping (or re-scanning) the whole latency stream as
//! frame counts grow toward whole recorded fleet days:
//!
//! * **Exact small-n path** — while `count <= capacity` every sample is
//!   retained, and [`Quantiles::quantile`] is bit-equal to the
//!   nearest-rank quantile of the sorted sample slice
//!   ([`Quantiles::exact_sorted`]).
//! * **Streaming estimator** — past capacity, full buffers are
//!   *compacted*: sorted, then every other sample promoted to the next
//!   level at twice the weight (a deterministic KLL-style sketch with
//!   alternating parity, so compaction bias cancels instead of
//!   accumulating). Memory stays `O(capacity · log(n / capacity))` with
//!   every buffer preallocated at its fixed capacity — the insert hot
//!   path never allocates once a level exists.
//! * **Shard merge** — sketches built over shards of a stream
//!   [`merge`](Quantiles::merge) level-by-level into a sketch whose
//!   estimates agree with the whole-stream sketch to within the same
//!   rank tolerance (the property suite pins this).
//!
//! Determinism: no randomness anywhere — the same insert sequence
//! always produces the same sketch, so DES reports stay bit-identical
//! at any `--jobs` count.

/// A fixed-memory streaming quantile sketch over `f64` samples.
///
/// # Examples
///
/// ```
/// use npu_pipesim::Quantiles;
///
/// let mut q = Quantiles::new();
/// for i in 0..100 {
///     q.insert(f64::from(i));
/// }
/// // 100 samples fit the default capacity: quantiles are exact
/// // nearest-rank order statistics.
/// assert!(q.is_exact());
/// assert_eq!(q.quantile(0.5), Some(49.0));
/// assert_eq!(q.quantile(0.99), Some(98.0));
/// assert_eq!(q.quantile(1.0), Some(99.0));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Quantiles {
    /// Per-level buffer capacity (even, ≥ 8).
    capacity: usize,
    /// Samples inserted so far (across merges too).
    count: u64,
    /// `levels[l]` holds samples of weight `2^l`.
    levels: Vec<Vec<f64>>,
    /// Per-level compaction parity: alternates which half survives.
    parity: Vec<bool>,
}

impl Default for Quantiles {
    fn default() -> Self {
        Quantiles::with_capacity(Quantiles::DEFAULT_CAPACITY)
    }
}

impl Quantiles {
    /// Default per-level buffer size: large enough that every run the
    /// built-in artifacts perform today stays on the exact path, small
    /// enough that million-frame drives stay cheap.
    pub const DEFAULT_CAPACITY: usize = 512;

    /// A sketch with the default capacity.
    pub fn new() -> Self {
        Quantiles::default()
    }

    /// A sketch retaining up to `capacity` samples per level (rounded up
    /// to an even number, at least 8). Samples are exact until the first
    /// compaction, i.e. while `count <= capacity`.
    pub fn with_capacity(capacity: usize) -> Self {
        let capacity = capacity.max(8);
        let capacity = capacity + (capacity & 1);
        Quantiles {
            capacity,
            count: 0,
            levels: vec![Vec::with_capacity(capacity)],
            parity: vec![false],
        }
    }

    /// The per-level buffer capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Samples inserted so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True while every inserted sample is still retained, so
    /// [`quantile`](Quantiles::quantile) returns exact nearest-rank
    /// order statistics (guaranteed for `count <= capacity`).
    pub fn is_exact(&self) -> bool {
        self.levels.len() == 1
    }

    /// Samples currently retained across all levels.
    pub fn stored(&self) -> usize {
        self.levels.iter().map(Vec::len).sum()
    }

    /// Inserts one sample.
    ///
    /// # Panics
    ///
    /// Panics on a non-finite sample: a NaN latency would poison every
    /// downstream comparison silently.
    pub fn insert(&mut self, value: f64) {
        assert!(value.is_finite(), "quantile samples must be finite");
        self.count += 1;
        self.push_at(0, value);
    }

    /// Folds another sketch into this one: level-by-level, so weights
    /// are preserved regardless of either sketch's capacity. The merged
    /// estimate agrees with a whole-stream sketch to within the same
    /// rank tolerance; it stays *exact* only while the merged count
    /// still fits one exact buffer.
    pub fn merge(&mut self, other: &Quantiles) {
        for (lvl, values) in other.levels.iter().enumerate() {
            for &v in values {
                self.push_at(lvl, v);
            }
        }
        self.count += other.count;
    }

    /// The `phi`-quantile (`0.0 ..= 1.0`) of the stream, or `None` for
    /// an empty sketch. Uses the nearest-rank convention: the smallest
    /// retained sample whose cumulative weight reaches
    /// `max(ceil(phi · count), 1)`. Exact while
    /// [`is_exact`](Quantiles::is_exact); otherwise within the sketch's
    /// rank tolerance.
    ///
    /// # Panics
    ///
    /// Panics if `phi` is not within `[0, 1]`.
    pub fn quantile(&self, phi: f64) -> Option<f64> {
        assert!(
            (0.0..=1.0).contains(&phi),
            "quantile fraction must be in [0, 1], got {phi}"
        );
        if self.count == 0 {
            return None;
        }
        let mut items: Vec<(f64, u64)> = Vec::with_capacity(self.stored());
        for (lvl, values) in self.levels.iter().enumerate() {
            let weight = 1u64 << lvl;
            items.extend(values.iter().map(|&v| (v, weight)));
        }
        items.sort_unstable_by(|a, b| a.0.total_cmp(&b.0));
        // Same rank expression as `exact_sorted`, so the small-n path is
        // bit-equal to the sorted-slice computation.
        let target = ((phi * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cumulative = 0u64;
        for &(value, weight) in &items {
            cumulative += weight;
            if cumulative >= target {
                return Some(value);
            }
        }
        items.last().map(|&(value, _)| value)
    }

    /// The exact nearest-rank `phi`-quantile of an already **sorted**
    /// slice — the reference the streaming estimate is validated
    /// against, and the convention the exact path reproduces bit-equal.
    ///
    /// # Panics
    ///
    /// Panics on an empty slice or a `phi` outside `[0, 1]`.
    pub fn exact_sorted(sorted: &[f64], phi: f64) -> f64 {
        assert!(!sorted.is_empty(), "cannot take a quantile of nothing");
        assert!(
            (0.0..=1.0).contains(&phi),
            "quantile fraction must be in [0, 1], got {phi}"
        );
        let rank = ((phi * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        sorted[rank - 1]
    }

    /// Pushes a sample at `lvl`, compacting a full buffer first so no
    /// level ever exceeds its capacity.
    fn push_at(&mut self, lvl: usize, value: f64) {
        while self.levels.len() <= lvl {
            self.levels.push(Vec::with_capacity(self.capacity));
            self.parity.push(false);
        }
        if self.levels[lvl].len() >= self.capacity {
            self.compact(lvl);
        }
        self.levels[lvl].push(value);
    }

    /// Compacts a full level: sort, promote every other sample to the
    /// next level (weight doubles, total weight is conserved because the
    /// capacity is even), alternating the surviving parity per
    /// compaction so the deterministic choice does not bias one
    /// direction.
    fn compact(&mut self, lvl: usize) {
        let mut level = std::mem::take(&mut self.levels[lvl]);
        level.sort_unstable_by(f64::total_cmp);
        let start = usize::from(self.parity[lvl]);
        self.parity[lvl] = !self.parity[lvl];
        let mut i = start;
        while i < level.len() {
            self.push_at(lvl + 1, level[i]);
            i += 2;
        }
        level.clear();
        // Hand the (still fully allocated) buffer back: steady-state
        // insertion never allocates.
        self.levels[lvl] = level;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sorted(mut v: Vec<f64>) -> Vec<f64> {
        v.sort_unstable_by(f64::total_cmp);
        v
    }

    #[test]
    fn empty_sketch_has_no_quantiles() {
        let q = Quantiles::new();
        assert_eq!(q.count(), 0);
        assert_eq!(q.quantile(0.5), None);
        assert!(q.is_exact());
    }

    #[test]
    fn exact_path_matches_sorted_slice_bit_for_bit() {
        let mut q = Quantiles::with_capacity(64);
        let values: Vec<f64> = (0..64).map(|i| ((i * 37) % 64) as f64 * 0.125).collect();
        for &v in &values {
            q.insert(v);
        }
        assert!(q.is_exact(), "64 samples fit a 64-capacity buffer");
        let reference = sorted(values);
        for phi in [0.0, 0.25, 0.5, 0.9, 0.95, 0.99, 0.999, 1.0] {
            let exact = Quantiles::exact_sorted(&reference, phi);
            assert_eq!(q.quantile(phi).unwrap().to_bits(), exact.to_bits(), "{phi}");
        }
    }

    #[test]
    fn capacity_is_normalized_even() {
        assert_eq!(Quantiles::with_capacity(0).capacity(), 8);
        assert_eq!(Quantiles::with_capacity(9).capacity(), 10);
        assert_eq!(Quantiles::with_capacity(512).capacity(), 512);
    }

    #[test]
    fn compaction_keeps_memory_bounded_and_estimates_sane() {
        let mut q = Quantiles::with_capacity(32);
        let n = 10_000;
        for i in 0..n {
            // A deterministic scrambled uniform stream over [0, 1).
            q.insert(((i * 2_654_435_761u64) % 100_000) as f64 / 100_000.0);
        }
        assert!(!q.is_exact());
        assert_eq!(q.count(), n);
        assert!(
            q.stored() <= 32 * q.levels.len(),
            "stored {} levels {}",
            q.stored(),
            q.levels.len()
        );
        // Uniform stream: the phi-quantile is near phi.
        for phi in [0.5, 0.95, 0.99] {
            let est = q.quantile(phi).unwrap();
            assert!((est - phi).abs() < 0.08, "phi {phi}: estimate {est}");
        }
    }

    #[test]
    fn total_weight_is_conserved_across_compactions() {
        let mut q = Quantiles::with_capacity(16);
        for i in 0..5_000u64 {
            q.insert(i as f64);
        }
        let weight: u64 = q
            .levels
            .iter()
            .enumerate()
            .map(|(l, v)| (1u64 << l) * v.len() as u64)
            .sum();
        assert_eq!(weight, q.count());
    }

    #[test]
    fn merge_preserves_count_and_ballpark() {
        let mut whole = Quantiles::with_capacity(32);
        let mut a = Quantiles::with_capacity(32);
        let mut b = Quantiles::with_capacity(32);
        for i in 0..4_000u64 {
            let v = ((i * 48_271) % 9973) as f64;
            whole.insert(v);
            if i % 2 == 0 {
                a.insert(v);
            } else {
                b.insert(v);
            }
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        for phi in [0.5, 0.95, 0.99] {
            let (m, w) = (a.quantile(phi).unwrap(), whole.quantile(phi).unwrap());
            assert!((m - w).abs() < 9973.0 * 0.08, "phi {phi}: {m} vs {w}");
        }
    }

    #[test]
    fn merged_small_sketches_stay_exact() {
        let mut a = Quantiles::with_capacity(64);
        let mut b = Quantiles::with_capacity(64);
        let mut all = Vec::new();
        for i in 0..20 {
            a.insert(i as f64);
            b.insert((100 + i) as f64);
            all.push(i as f64);
            all.push((100 + i) as f64);
        }
        a.merge(&b);
        assert!(a.is_exact(), "40 samples fit one 64-capacity buffer");
        let reference = sorted(all);
        for phi in [0.1, 0.5, 0.99] {
            assert_eq!(
                a.quantile(phi).unwrap(),
                Quantiles::exact_sorted(&reference, phi)
            );
        }
    }

    #[test]
    #[should_panic(expected = "must be finite")]
    fn nan_samples_are_rejected() {
        Quantiles::new().insert(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "must be in [0, 1]")]
    fn out_of_range_phi_is_rejected() {
        let mut q = Quantiles::new();
        q.insert(1.0);
        let _ = q.quantile(1.5);
    }
}
