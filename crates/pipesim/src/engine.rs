//! The discrete-event engine.

use std::cmp::Ordering;
use std::collections::{BTreeMap, BinaryHeap};

use serde::{Deserialize, Serialize};

use npu_maestro::CostModel;
use npu_mcm::{ChipletId, McmPackage};
use npu_sched::{flatten_items, Schedule, SimItem};
use npu_tensor::Dtype;

use crate::arrivals::Arrivals;
use crate::report::SimReport;

/// Simulation configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Number of frames to push through the pipeline.
    pub frames: usize,
    /// The frame arrival process (saturation, periodic, jittered, bursty
    /// or trace replay — see [`Arrivals`]).
    pub arrivals: Arrivals,
    /// Frames discarded from the steady-state statistics at **each end**
    /// of the run: the first `warmup` frames (pipeline fill) and the last
    /// `warmup` frames (pipeline drain). The report clamps the trim so
    /// the measured window keeps at least one frame.
    pub warmup: usize,
    /// NoP accounting datatype.
    pub dtype: Dtype,
}

impl SimConfig {
    /// Default symmetric trim for an `frames`-frame run: a quarter of the
    /// run from each end, capped at 4 frames. Short runs keep most of
    /// their frames measurable (`frames ≤ 4` trims at most one per end),
    /// long runs trim a fixed 4.
    pub fn default_warmup(frames: usize) -> usize {
        (frames / 4).min(4)
    }

    /// Saturation mode: measure the sustainable frame rate.
    pub fn saturated(frames: usize) -> Self {
        SimConfig::with_arrivals(frames, Arrivals::Saturated)
    }

    /// Camera mode: frames arrive at the given rate (e.g. 30 FPS).
    ///
    /// # Panics
    ///
    /// Panics if `fps` is not finite and positive (a zero or NaN rate
    /// would silently produce non-finite event times).
    pub fn camera(frames: usize, fps: f64) -> Self {
        SimConfig::with_arrivals(frames, Arrivals::periodic_fps(fps))
    }

    /// Any arrival process with the default warmup trim and datatype.
    pub fn with_arrivals(frames: usize, arrivals: Arrivals) -> Self {
        SimConfig {
            frames,
            arrivals,
            warmup: SimConfig::default_warmup(frames),
            dtype: Dtype::Fp16,
        }
    }

    /// Adds uniform arrival jitter (builder style). `frac` is clamped
    /// into `[0, 1)` (NaN clamps to 0) instead of poisoning event times.
    /// Saturated, bursty and trace arrivals have no per-frame interval to
    /// jitter and pass through unchanged.
    pub fn with_jitter(mut self, frac: f64, seed: u64) -> Self {
        let frac = Arrivals::clamp_jitter(frac);
        if let Arrivals::Periodic { interval } | Arrivals::Jittered { interval, .. } = self.arrivals
        {
            self.arrivals = Arrivals::Jittered {
                interval,
                frac,
                seed,
            };
        }
        self
    }
}

/// Priority: earlier frame first, then item (topological) order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Job {
    frame: usize,
    item: usize,
}

impl Ord for Job {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first.
        (other.frame, other.item).cmp(&(self.frame, self.item))
    }
}

impl PartialOrd for Job {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

#[derive(Debug, Clone, PartialEq)]
enum Event {
    FrameArrival(usize),
    ItemDone { chiplet: ChipletId, job: Job },
}

#[derive(Debug, Clone, PartialEq)]
struct Scheduled {
    time: f64,
    seq: u64,
    event: Event,
}

impl Eq for Scheduled {}

impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap by time (then insertion order for determinism).
        // total_cmp keeps the heap order total even if a cost model
        // ever produced a NaN timestamp.
        other
            .time
            .total_cmp(&self.time)
            .then(other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Runs the discrete-event simulation of a schedule.
///
/// Every layer shard becomes a job on its chiplet; chiplets serve their
/// ready queues earliest-frame-first; a job starts when its same-frame
/// dependencies have completed and its chiplet is free.
pub fn simulate(
    schedule: &Schedule,
    pkg: &McmPackage,
    model: &dyn CostModel,
    cfg: &SimConfig,
) -> SimReport {
    let items = flatten_items(schedule, pkg, model, cfg.dtype);
    let times = cfg.arrivals.times(cfg.frames);
    let run = run_items(&items, &times);
    SimReport::from_run(&run.arrivals, &run.completions, &run.busy, cfg.warmup)
}

/// One phase of a time-varying simulation: a compiled schedule serving
/// absolute-time frame arrivals from `ready_at` onwards. Frames arriving
/// while the mapping is still spinning up (`t < ready_at`) are **dropped**
/// — the re-match window of an online mode switch — and counted in the
/// phase's [`PhaseReport`] instead of entering the pipeline.
#[derive(Debug, Clone)]
pub struct SimPhase<'a> {
    /// The schedule active during this phase.
    pub schedule: &'a Schedule,
    /// Absolute arrival timestamps of the phase's frames (non-decreasing).
    pub times: Vec<f64>,
    /// When the phase's mapping is ready to accept frames.
    pub ready_at: f64,
    /// Symmetric steady-state trim for the phase's report (see
    /// [`SimConfig::warmup`]).
    pub warmup: usize,
}

/// The measured behaviour of one [`SimPhase`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseReport {
    /// Steady-state statistics over the frames that were actually served.
    pub report: SimReport,
    /// Frames the arrival process offered to the phase.
    pub offered: usize,
    /// Frames dropped because they arrived before `ready_at`.
    pub dropped: usize,
}

impl PhaseReport {
    /// Frames that entered the pipeline (`offered - dropped`).
    pub fn served(&self) -> usize {
        self.offered - self.dropped
    }
}

/// Runs a time-varying simulation: phases share one wall clock, and each
/// phase's schedule serves its own arrivals. This is the engine hook an
/// online mode switch compiles to — the schedule (and thus the compiled
/// `PerceptionConfig`) is swapped at every phase boundary, and frames
/// arriving before the incoming mapping's `ready_at` are dropped rather
/// than served.
///
/// Phases hand over **cleanly** at boundaries: the outgoing mapping
/// drains its in-flight frames independently, and the incoming mapping
/// starts on freshly re-programmed chiplets with empty queues. Queue
/// carry-over across the switch (a make-before-break handover where the
/// old mapping's backlog contends with the new one) is deliberately not
/// modeled — re-programming a chiplet flushes it. Per-phase busy
/// fractions are therefore relative to each phase's own span.
///
/// A single phase with `ready_at` at or before its first arrival is
/// exactly [`simulate`] — same event order, bit-identical statistics —
/// which the cross-validation suite pins.
///
/// # Panics
///
/// Panics if a phase's schedule is empty or its times are not finite and
/// non-decreasing.
pub fn simulate_phases(
    phases: &[SimPhase<'_>],
    pkg: &McmPackage,
    model: &dyn CostModel,
    dtype: Dtype,
) -> Vec<PhaseReport> {
    phases
        .iter()
        .map(|phase| {
            assert!(
                phase.times.windows(2).all(|w| w[0] <= w[1])
                    && phase.times.iter().all(|t| t.is_finite()),
                "phase arrivals must be finite and non-decreasing"
            );
            let items = flatten_items(phase.schedule, pkg, model, dtype);
            let served: Vec<f64> = phase
                .times
                .iter()
                .copied()
                .filter(|&t| t >= phase.ready_at)
                .collect();
            let run = run_items(&items, &served);
            PhaseReport {
                report: SimReport::from_run(
                    &run.arrivals,
                    &run.completions,
                    &run.busy,
                    phase.warmup,
                ),
                offered: phase.times.len(),
                dropped: phase.times.len() - served.len(),
            }
        })
        .collect()
}

/// Raw outcome of one DES pass: absolute per-frame arrival and completion
/// times plus per-chiplet busy totals.
struct RawRun {
    arrivals: Vec<f64>,
    completions: Vec<f64>,
    busy: BTreeMap<ChipletId, f64>,
}

/// The discrete-event core: drives one frame per entry of `times`
/// (absolute arrival timestamps) through the flattened items.
fn run_items(items: &[SimItem], times: &[f64]) -> RawRun {
    assert!(!items.is_empty(), "cannot simulate an empty schedule");
    let frames = times.len();
    let n_items = items.len();

    // Reverse dependency lists.
    let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); n_items];
    for (i, item) in items.iter().enumerate() {
        for &d in &item.deps {
            dependents[d].push(i);
        }
    }

    // Per-frame remaining-dependency counters and completion counts.
    let mut deps_left: Vec<Vec<usize>> = Vec::with_capacity(frames);
    for _ in 0..frames {
        deps_left.push(items.iter().map(|it| it.deps.len()).collect());
    }
    let mut remaining: Vec<usize> = vec![n_items; frames];

    // Chiplet state.
    let mut ready: BTreeMap<ChipletId, BinaryHeap<Job>> = BTreeMap::new();
    let mut busy_time: BTreeMap<ChipletId, f64> = BTreeMap::new();
    for item in items {
        ready.entry(item.chiplet).or_default();
        busy_time.entry(item.chiplet).or_insert(0.0);
    }

    let mut heap: BinaryHeap<Scheduled> = BinaryHeap::new();
    let mut seq = 0u64;
    let mut push = |heap: &mut BinaryHeap<Scheduled>, time: f64, event: Event| {
        heap.push(Scheduled {
            time,
            seq: {
                seq += 1;
                seq
            },
            event,
        });
    };

    for (f, &t) in times.iter().enumerate() {
        push(&mut heap, t, Event::FrameArrival(f));
    }

    let mut arrivals: Vec<f64> = vec![0.0; frames];
    let mut completions: Vec<f64> = vec![f64::NAN; frames];
    let busy_until: BTreeMap<ChipletId, f64> = BTreeMap::new();

    // Chiplet executor state bundled for the dispatch helper.
    struct Executors<'a> {
        items: &'a [SimItem],
        ready: BTreeMap<ChipletId, BinaryHeap<Job>>,
        busy_until: BTreeMap<ChipletId, f64>,
        busy_time: &'a mut BTreeMap<ChipletId, f64>,
        seq: u64,
    }

    impl Executors<'_> {
        /// Starts the next ready job on a free chiplet.
        fn dispatch(&mut self, chiplet: ChipletId, now: f64, heap: &mut BinaryHeap<Scheduled>) {
            let free = self.busy_until.get(&chiplet).copied().unwrap_or(0.0);
            if free > now {
                return;
            }
            if let Some(job) = self.ready.get_mut(&chiplet).and_then(|q| q.pop()) {
                let dur = self.items[job.item].duration.as_secs();
                self.busy_until.insert(chiplet, now + dur);
                *self.busy_time.entry(chiplet).or_insert(0.0) += dur;
                self.seq += 1;
                heap.push(Scheduled {
                    time: now + dur,
                    seq: self.seq,
                    event: Event::ItemDone { chiplet, job },
                });
            }
        }

        /// Enqueues a job and tries to start it immediately.
        fn enqueue(&mut self, job: Job, now: f64, heap: &mut BinaryHeap<Scheduled>) {
            let chiplet = self.items[job.item].chiplet;
            self.ready
                .get_mut(&chiplet)
                .expect("chiplet registered")
                .push(job);
            self.dispatch(chiplet, now, heap);
        }
    }

    let mut exec = Executors {
        items,
        ready,
        busy_until,
        busy_time: &mut busy_time,
        seq,
    };

    while let Some(Scheduled { time, event, .. }) = heap.pop() {
        match event {
            Event::FrameArrival(frame) => {
                arrivals[frame] = time;
                for (i, item) in items.iter().enumerate() {
                    if item.deps.is_empty() {
                        exec.enqueue(Job { frame, item: i }, time, &mut heap);
                    }
                }
            }
            Event::ItemDone { chiplet, job } => {
                remaining[job.frame] -= 1;
                if remaining[job.frame] == 0 {
                    completions[job.frame] = time;
                }
                for &succ in &dependents[job.item] {
                    deps_left[job.frame][succ] -= 1;
                    if deps_left[job.frame][succ] == 0 {
                        exec.enqueue(
                            Job {
                                frame: job.frame,
                                item: succ,
                            },
                            time,
                            &mut heap,
                        );
                    }
                }
                exec.dispatch(chiplet, time, &mut heap);
            }
        }
    }

    debug_assert!(remaining.iter().all(|&r| r == 0), "all frames completed");
    RawRun {
        arrivals,
        completions,
        busy: busy_time,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use npu_dnn::models::attention::{fusion_block, FusionConfig};
    use npu_dnn::StageKind;
    use npu_maestro::FittedMaestro;
    use npu_sched::{LayerPlan, ModelPlan, StagePlan};
    use npu_tensor::Seconds;

    /// Small-run warmup clamping: a quarter of the run per end, capped
    /// at 4, so `frames ≤ 4` never trims the window away.
    #[test]
    fn default_warmup_clamps_small_runs() {
        for (frames, expected) in [
            (0, 0),
            (1, 0),
            (2, 0),
            (3, 0),
            (4, 1),
            (8, 2),
            (12, 3),
            (16, 4),
            (1000, 4),
        ] {
            assert_eq!(
                SimConfig::saturated(frames).warmup,
                expected,
                "saturated({frames})"
            );
            assert_eq!(
                SimConfig::camera(frames, 30.0).warmup,
                expected,
                "camera({frames})"
            );
        }
    }

    /// A `frames ≤ 4` saturation run keeps a non-degenerate window: the
    /// interval comes from real completion deltas, not the fallback.
    #[test]
    fn four_frame_run_measures_a_real_interval() {
        let g = fusion_block(&FusionConfig::spatial_default());
        let pkg = McmPackage::simba_6x6();
        let model = FittedMaestro::new();
        let schedule = Schedule {
            stages: vec![StagePlan {
                kind: StageKind::SpatialFusion,
                models: vec![ModelPlan::on_single_chiplet("s", g, ChipletId(0))],
                region: vec![ChipletId(0)],
            }],
        };
        let rep = simulate(&schedule, &pkg, &model, &SimConfig::saturated(4));
        // warmup = 1 per end: two frames stay measurable.
        assert_eq!(rep.measured_frames, 2);
        let analytic = npu_sched::evaluate(&schedule, &pkg, &model, Dtype::Fp16).pipe;
        let rel = (rep.steady_interval.as_secs() / analytic.as_secs() - 1.0).abs();
        assert!(
            rel < 1e-9,
            "DES {} vs analytic {}",
            rep.steady_interval,
            analytic
        );
    }

    /// A chain on a single chiplet: interval must equal the serial sum.
    #[test]
    fn single_chiplet_chain_interval_is_serial_sum() {
        let g = fusion_block(&FusionConfig::spatial_default());
        let pkg = McmPackage::simba_6x6();
        let model = FittedMaestro::new();
        let schedule = Schedule {
            stages: vec![StagePlan {
                kind: StageKind::SpatialFusion,
                models: vec![ModelPlan::on_single_chiplet("s", g, ChipletId(0))],
                region: vec![ChipletId(0)],
            }],
        };
        let rep = simulate(&schedule, &pkg, &model, &SimConfig::saturated(8));
        let analytic = npu_sched::evaluate(&schedule, &pkg, &model, Dtype::Fp16).pipe;
        let rel = (rep.steady_interval.as_secs() / analytic.as_secs() - 1.0).abs();
        assert!(
            rel < 1e-9,
            "DES {} vs analytic {}",
            rep.steady_interval,
            analytic
        );
    }

    /// Two chiplets in a chain pipeline at the busier one's rate.
    #[test]
    fn two_stage_chain_pipelines() {
        let g = fusion_block(&FusionConfig::spatial_default());
        let pkg = McmPackage::simba_6x6();
        let model = FittedMaestro::new();
        // qkv on c0, everything else on c1.
        let mut mp = ModelPlan::on_single_chiplet("s", g.clone(), ChipletId(1));
        let qkv = g.find("s_fuse.qkv").unwrap();
        *mp.layer_plan_mut(qkv) = LayerPlan::single(g.layer(qkv).clone(), ChipletId(0));
        let schedule = Schedule {
            stages: vec![StagePlan {
                kind: StageKind::SpatialFusion,
                models: vec![mp],
                region: vec![ChipletId(0), ChipletId(1)],
            }],
        };
        let rep = simulate(&schedule, &pkg, &model, &SimConfig::saturated(12));
        let analytic = npu_sched::evaluate(&schedule, &pkg, &model, Dtype::Fp16).pipe;
        let rel = (rep.steady_interval.as_secs() / analytic.as_secs() - 1.0).abs();
        assert!(
            rel < 0.02,
            "DES {} vs analytic {}",
            rep.steady_interval,
            analytic
        );
        // Latency of one frame exceeds the interval (pipelining).
        assert!(rep.mean_latency > rep.steady_interval);
    }

    /// Jittered arrivals stay deterministic per seed and do not change
    /// the saturation throughput.
    #[test]
    fn jitter_is_deterministic_and_bounded() {
        let g = fusion_block(&FusionConfig::spatial_default());
        let pkg = McmPackage::simba_6x6();
        let model = FittedMaestro::new();
        let schedule = Schedule {
            stages: vec![StagePlan {
                kind: StageKind::SpatialFusion,
                models: vec![ModelPlan::on_single_chiplet("s", g, ChipletId(0))],
                region: vec![ChipletId(0)],
            }],
        };
        let cfg = SimConfig::camera(10, 2.0).with_jitter(0.2, 42);
        let a = simulate(&schedule, &pkg, &model, &cfg);
        let b = simulate(&schedule, &pkg, &model, &cfg);
        assert_eq!(a, b, "same seed, same result");
        let other = simulate(
            &schedule,
            &pkg,
            &model,
            &SimConfig::camera(10, 2.0).with_jitter(0.2, 7),
        );
        // Jittered completions shift the measured interval per seed.
        assert_ne!(a.steady_interval, other.steady_interval, "seed matters");
        // Jitter shifts arrivals by < one interval: latency stays sane.
        assert!(a.max_latency.as_secs() < 1.5);
    }

    #[test]
    #[should_panic(expected = "finite and positive")]
    fn camera_rejects_zero_fps() {
        let _ = SimConfig::camera(8, 0.0);
    }

    #[test]
    #[should_panic(expected = "finite and positive")]
    fn camera_rejects_non_finite_fps() {
        let _ = SimConfig::camera(8, f64::INFINITY);
    }

    /// Out-of-range jitter fractions clamp into `[0, 1)` instead of
    /// poisoning arrival times (NaN clamps to zero).
    #[test]
    fn jitter_fraction_is_clamped() {
        let frac = |cfg: &SimConfig| match cfg.arrivals {
            Arrivals::Jittered { frac, .. } => frac,
            ref a => panic!("expected jittered arrivals, got {a:?}"),
        };
        let base = || SimConfig::camera(8, 30.0);
        assert_eq!(frac(&base().with_jitter(1.5, 0)), Arrivals::MAX_JITTER);
        assert_eq!(frac(&base().with_jitter(-0.3, 0)), 0.0);
        assert_eq!(frac(&base().with_jitter(f64::NAN, 0)), 0.0);
        assert_eq!(frac(&base().with_jitter(0.25, 0)), 0.25);
        // Every clamped config expands to finite arrival times.
        for cfg in [base().with_jitter(1.5, 1), base().with_jitter(f64::NAN, 1)] {
            assert!(cfg.arrivals.times(cfg.frames).iter().all(|t| t.is_finite()));
        }
        // Saturation has no interval to jitter: unchanged.
        let sat = SimConfig::saturated(8).with_jitter(0.5, 1);
        assert_eq!(sat.arrivals, Arrivals::Saturated);
    }

    /// Bursty arrivals: the steady interval settles at the mean burst
    /// rate when the pipeline keeps up.
    #[test]
    fn bursty_arrivals_settle_at_mean_rate() {
        let g = fusion_block(&FusionConfig::spatial_default());
        let pkg = McmPackage::simba_6x6();
        let model = FittedMaestro::new();
        let schedule = Schedule {
            stages: vec![StagePlan {
                kind: StageKind::SpatialFusion,
                models: vec![ModelPlan::on_single_chiplet("s", g, ChipletId(0))],
                region: vec![ChipletId(0)],
            }],
        };
        // Bursts of 4 frames every 4 s: mean interval 1 s, and both the
        // 0.4 s intra-burst spacing and the inter-burst gap exceed the
        // ~366 ms service time, so every frame is arrival-limited. 17
        // frames with the default warmup of 4 puts the measured window at
        // frames 4..=12 — exactly two whole bursts, so the windowed
        // interval estimator sees the mean rate with no phase bias.
        let arrivals = Arrivals::Bursty {
            period: Seconds::new(4.0),
            burst: 4,
            intra: Seconds::new(0.4),
        };
        let rep = simulate(
            &schedule,
            &pkg,
            &model,
            &SimConfig::with_arrivals(17, arrivals.clone()),
        );
        let mean = arrivals.mean_interval().unwrap().as_secs();
        let rel = (rep.steady_interval.as_secs() / mean - 1.0).abs();
        assert!(rel < 1e-9, "DES {} vs mean {}", rep.steady_interval, mean);
    }

    /// Trace replay reproduces recorded arrival times exactly.
    #[test]
    fn trace_replay_is_exact_and_deterministic() {
        let g = fusion_block(&FusionConfig::spatial_default());
        let pkg = McmPackage::simba_6x6();
        let model = FittedMaestro::new();
        let schedule = Schedule {
            stages: vec![StagePlan {
                kind: StageKind::SpatialFusion,
                models: vec![ModelPlan::on_single_chiplet("s", g, ChipletId(0))],
                region: vec![ChipletId(0)],
            }],
        };
        let trace = Arrivals::trace(vec![
            Seconds::new(0.0),
            Seconds::new(0.5),
            Seconds::new(1.2),
            Seconds::new(2.0),
        ]);
        let cfg = SimConfig::with_arrivals(8, trace);
        let a = simulate(&schedule, &pkg, &model, &cfg);
        let b = simulate(&schedule, &pkg, &model, &cfg);
        assert_eq!(a, b, "trace replay is deterministic");
        assert!(a.measured_frames > 0);
    }

    /// With slow arrivals the pipeline is arrival-limited.
    #[test]
    fn arrival_limited_at_low_fps() {
        let g = fusion_block(&FusionConfig::spatial_default());
        let pkg = McmPackage::simba_6x6();
        let model = FittedMaestro::new();
        let schedule = Schedule {
            stages: vec![StagePlan {
                kind: StageKind::SpatialFusion,
                models: vec![ModelPlan::on_single_chiplet("s", g, ChipletId(0))],
                region: vec![ChipletId(0)],
            }],
        };
        // One frame per second: far slower than the ~366 ms service time.
        let rep = simulate(&schedule, &pkg, &model, &SimConfig::camera(8, 1.0));
        assert!((rep.steady_interval.as_secs() - 1.0).abs() < 1e-9);
        // Utilization is low: the chiplet idles between frames.
        assert!(rep.busy_fraction(ChipletId(0)).unwrap() < 0.5);
    }
}
