//! The discrete-event engine.

use std::cmp::Ordering;
use std::collections::{BTreeMap, BinaryHeap, VecDeque};

use serde::{Deserialize, Serialize};

use npu_maestro::CostModel;
use npu_mcm::{ChipletId, McmPackage};
use npu_sched::rematch::RematchOutcome;
use npu_sched::{flatten_items, Schedule, SimItem};
use npu_tensor::Dtype;

use crate::arrivals::Arrivals;
use crate::report::{ReportBuilder, SimReport};

/// Simulation configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Number of frames to push through the pipeline.
    pub frames: usize,
    /// The frame arrival process (saturation, periodic, jittered, bursty
    /// or trace replay — see [`Arrivals`]).
    pub arrivals: Arrivals,
    /// Frames discarded from the steady-state statistics at **each end**
    /// of the run: the first `warmup` frames (pipeline fill) and the last
    /// `warmup` frames (pipeline drain). The report clamps the trim so
    /// the measured window keeps at least one frame.
    pub warmup: usize,
    /// NoP accounting datatype.
    pub dtype: Dtype,
}

impl SimConfig {
    /// Default symmetric trim for an `frames`-frame run: a quarter of the
    /// run from each end, capped at 4 frames. Short runs keep most of
    /// their frames measurable (`frames ≤ 4` trims at most one per end),
    /// long runs trim a fixed 4.
    pub fn default_warmup(frames: usize) -> usize {
        (frames / 4).min(4)
    }

    /// Saturation mode: measure the sustainable frame rate.
    pub fn saturated(frames: usize) -> Self {
        SimConfig::with_arrivals(frames, Arrivals::Saturated)
    }

    /// Camera mode: frames arrive at the given rate (e.g. 30 FPS).
    ///
    /// # Panics
    ///
    /// Panics if `fps` is not finite and positive (a zero or NaN rate
    /// would silently produce non-finite event times).
    pub fn camera(frames: usize, fps: f64) -> Self {
        SimConfig::with_arrivals(frames, Arrivals::periodic_fps(fps))
    }

    /// Any arrival process with the default warmup trim and datatype.
    pub fn with_arrivals(frames: usize, arrivals: Arrivals) -> Self {
        SimConfig {
            frames,
            arrivals,
            warmup: SimConfig::default_warmup(frames),
            dtype: Dtype::Fp16,
        }
    }

    /// Adds uniform arrival jitter (builder style). `frac` is clamped
    /// into `[0, 1)` (NaN clamps to 0) instead of poisoning event times.
    /// Saturated, bursty and trace arrivals have no per-frame interval to
    /// jitter and pass through unchanged.
    pub fn with_jitter(mut self, frac: f64, seed: u64) -> Self {
        let frac = Arrivals::clamp_jitter(frac);
        if let Arrivals::Periodic { interval } | Arrivals::Jittered { interval, .. } = self.arrivals
        {
            self.arrivals = Arrivals::Jittered {
                interval,
                frac,
                seed,
            };
        }
        self
    }
}

/// Priority: earlier frame first, then item (topological) order. The
/// pool slot rides along as payload — two jobs of one frame always share
/// a slot, so ordering (and equality) ignore it.
#[derive(Debug, Clone, Copy)]
struct Job {
    frame: usize,
    item: u32,
    /// Index of the frame's recycled pool slot (payload, not priority).
    slot: u32,
}

impl PartialEq for Job {
    fn eq(&self, other: &Self) -> bool {
        (self.frame, self.item) == (other.frame, other.item)
    }
}

impl Eq for Job {}

impl Ord for Job {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first.
        (other.frame, other.item).cmp(&(self.frame, self.item))
    }
}

impl PartialOrd for Job {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// One item-completion event on the calendar. Frame arrivals are no
/// longer heaped — the engine walks the (non-decreasing) arrival
/// timestamps with a cursor and interleaves them with the calendar in
/// time order, so the heap holds at most one event per chiplet.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Scheduled {
    time: f64,
    seq: u64,
    /// Dense chiplet index the job ran on.
    chiplet: u32,
    job: Job,
}

impl Eq for Scheduled {}

impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap by time (then insertion order for determinism).
        // total_cmp keeps the heap order total even if a cost model
        // ever produced a NaN timestamp.
        other
            .time
            .total_cmp(&self.time)
            .then(other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Runs the discrete-event simulation of a schedule.
///
/// Every layer shard becomes a job on its chiplet; chiplets serve their
/// ready queues earliest-frame-first; a job starts when its same-frame
/// dependencies have completed and its chiplet is free.
pub fn simulate(
    schedule: &Schedule,
    pkg: &McmPackage,
    model: &dyn CostModel,
    cfg: &SimConfig,
) -> SimReport {
    simulate_with_stats(schedule, pkg, model, cfg).0
}

/// Engine-internal measurements of one DES pass: how big the run was and
/// how much state the engine actually held. The report is O(1) per frame;
/// these numbers let tests (and capacity planning) pin that bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EngineStats {
    /// Frames pushed through the pipeline.
    pub frames: usize,
    /// Most frames ever simultaneously in flight: the in-flight frame
    /// pool's high-water mark (= slots allocated; slots are recycled as
    /// frames complete, so this is the pool's final capacity too).
    pub peak_in_flight: usize,
    /// Frames flushed in flight at the run's cutoff (0 without one).
    pub flushed: usize,
}

/// [`simulate`], also returning the engine's [`EngineStats`] — the
/// 1M-frame smoke tests assert the in-flight pool stays bounded by the
/// schedule's natural pipelining depth, never the frame count.
pub fn simulate_with_stats(
    schedule: &Schedule,
    pkg: &McmPackage,
    model: &dyn CostModel,
    cfg: &SimConfig,
) -> (SimReport, EngineStats) {
    let items = flatten_items(schedule, pkg, model, cfg.dtype);
    let times = cfg.arrivals.times(cfg.frames);
    run_items(&items, &times, cfg.warmup, None)
}

/// When an incoming mapping can accept frames: either a package-wide
/// barrier (the legacy pessimistic model, and the exact semantics of a
/// full-diff transition, where no serving pipeline survives the switch)
/// or a make-before-break per-chiplet readiness schedule.
#[derive(Debug, Clone, PartialEq)]
pub enum Readiness {
    /// No frame is admitted before this absolute instant. A phase with
    /// no spin-up at all is `Barrier(switch instant)`.
    Barrier(f64),
    /// Make-before-break handover at absolute instant `at`: chiplets
    /// that keep their program (or were prestaged over the outgoing
    /// tail) serve from `at`; `ready` lists the absolute times the
    /// still-reloading chiplets come back online. A frame is dropped
    /// only when its critical path would land on a chiplet that is
    /// still reloading when the wavefront gets there.
    PerChiplet {
        /// The switch instant: the earliest any frame can be admitted.
        at: f64,
        /// Absolute ready times of the stalled chiplets, ascending
        /// chiplet order.
        ready: Vec<(ChipletId, f64)>,
    },
}

impl Readiness {
    /// The readiness of a priced mapping transition switching at
    /// absolute time `at` (see `npu_sched::rematch`):
    ///
    /// - a no-op diff is live immediately (`Barrier(at)`);
    /// - a full-barrier diff — every incoming chiplet re-programmed out
    ///   of a busy state — quiesces the package and reproduces the old
    ///   scalar semantics exactly (`Barrier(at + latency)`);
    /// - any partial diff keeps serving on its kept/prestaged chiplets
    ///   and stalls only the re-programmed busy ones, each until its
    ///   staged post-switch ready time.
    pub fn make_before_break(outcome: &RematchOutcome, at: f64) -> Readiness {
        if outcome.is_noop() {
            Readiness::Barrier(at)
        } else if outcome.is_full_barrier() {
            Readiness::Barrier(at + outcome.latency.as_secs())
        } else {
            Readiness::PerChiplet {
                at,
                ready: outcome
                    .readiness
                    .iter()
                    .map(|&(c, r)| (c, at + r.as_secs()))
                    .collect(),
            }
        }
    }

    /// The instant the last gating resource is ready (`at` when nothing
    /// stalls).
    pub fn last_ready(&self) -> f64 {
        match self {
            Readiness::Barrier(t) => *t,
            Readiness::PerChiplet { at, ready } => {
                ready.iter().map(|&(_, r)| r).fold(*at, f64::max)
            }
        }
    }

    fn assert_finite(&self) {
        match self {
            Readiness::Barrier(t) => {
                assert!(t.is_finite(), "phase readiness must be finite")
            }
            Readiness::PerChiplet { at, ready } => assert!(
                at.is_finite() && ready.iter().all(|(_, r)| r.is_finite()),
                "phase readiness must be finite"
            ),
        }
    }
}

/// The effective admission instant of a schedule under a readiness
/// model: the latest arrival time that would still route some item of a
/// frame onto a chiplet that has not come back online.
///
/// `est[i]` — the earliest start of item `i` relative to its frame's
/// arrival — is the longest path into the item over the dependency DAG
/// (`flatten_items` indexes items topologically, so one forward pass
/// suffices). In the DES an item can only start **later** than
/// `arrival + est[i]` (queueing and chiplet contention add delay, never
/// remove it), so a chiplet `c` whose earliest wavefront offset is
/// `offset[c] = min est[i]` over its items is first touched by a frame
/// arriving at `t` no earlier than `t + offset[c]`. Gating admission at
/// `max(ready[c] - offset[c])` is therefore *exact*: every admitted
/// frame provably never reaches a still-reloading chiplet, and every
/// dropped frame's critical path would have landed on one.
pub(crate) fn admission_gate(items: &[SimItem], readiness: &Readiness) -> f64 {
    let (at, ready) = match readiness {
        Readiness::Barrier(t) => return *t,
        Readiness::PerChiplet { at, ready } => (*at, ready),
    };
    let mut est = vec![0.0_f64; items.len()];
    for (i, item) in items.iter().enumerate() {
        let mut start: f64 = 0.0;
        for &d in &item.deps {
            start = start.max(est[d] + items[d].duration.as_secs());
        }
        est[i] = start;
    }
    let mut offset: BTreeMap<ChipletId, f64> = BTreeMap::new();
    for (i, item) in items.iter().enumerate() {
        let o = offset.entry(item.chiplet).or_insert(f64::INFINITY);
        *o = o.min(est[i]);
    }
    let mut gate = at;
    for (c, r) in ready {
        // A stalled chiplet hosting no work in this schedule gates
        // nothing (defensive: rematch only stalls incoming chiplets).
        if let Some(&o) = offset.get(c) {
            gate = gate.max(r - o);
        }
    }
    gate
}

/// One phase of a time-varying simulation: a compiled schedule serving
/// absolute-time frame arrivals under a [`Readiness`] model. Frames
/// arriving while the gating resources are still spinning up are
/// **dropped** — the re-match window of an online mode switch — and
/// counted in the phase's [`PhaseReport`] instead of entering the
/// pipeline.
#[derive(Debug, Clone)]
pub struct SimPhase<'a> {
    /// The schedule active during this phase.
    pub schedule: &'a Schedule,
    /// Absolute arrival timestamps of the phase's frames (non-decreasing).
    pub times: Vec<f64>,
    /// When the phase's mapping accepts frames: a package-wide barrier
    /// or a make-before-break per-chiplet schedule.
    pub readiness: Readiness,
    /// Symmetric steady-state trim for the phase's report (see
    /// [`SimConfig::warmup`]); `None` derives the default trim from the
    /// **served** frame count once admission drops are known.
    pub warmup: Option<usize>,
    /// Boundary instant at which the phase's in-flight frames are
    /// flushed: set when the *next* transition is a full barrier (the
    /// package quiesces, killing in-flight work). `None` lets frames
    /// drain past the boundary — a make-before-break handover keeps the
    /// outgoing chiplets serving until their queues empty.
    pub cutoff: Option<f64>,
}

impl<'a> SimPhase<'a> {
    /// A phase that drains freely at its end (no boundary flush) with
    /// the default steady-state trim.
    pub fn new(schedule: &'a Schedule, times: Vec<f64>, readiness: Readiness) -> SimPhase<'a> {
        SimPhase {
            schedule,
            times,
            readiness,
            warmup: None,
            cutoff: None,
        }
    }
}

/// The measured behaviour of one [`SimPhase`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseReport {
    /// Steady-state statistics over the frames that were actually served.
    pub report: SimReport,
    /// Frames the arrival process offered to the phase.
    pub offered: usize,
    /// Frames dropped because they arrived before the admission gate.
    pub dropped: usize,
    /// Frames admitted but flushed in flight at the phase's end because
    /// the next transition quiesced the package.
    pub flushed: usize,
    /// The effective admission instant: the barrier time, or the
    /// make-before-break gate `max(ready[c] - wavefront offset[c])`
    /// clamped to the switch instant. The phase's spin-up charge is
    /// `admitted_from - switch instant`.
    pub admitted_from: f64,
}

impl PhaseReport {
    /// Frames that entered the pipeline and completed
    /// (`offered - dropped - flushed`).
    pub fn served(&self) -> usize {
        debug_assert!(
            self.dropped + self.flushed <= self.offered,
            "dropped ({}) + flushed ({}) exceeds offered ({})",
            self.dropped,
            self.flushed,
            self.offered
        );
        self.offered
            .saturating_sub(self.dropped)
            .saturating_sub(self.flushed)
    }
}

/// Runs a time-varying simulation: phases share one wall clock, and each
/// phase's schedule serves its own arrivals. This is the engine hook an
/// online mode switch compiles to — the schedule (and thus the compiled
/// `PerceptionConfig`) is swapped at every phase boundary under the
/// phase's [`Readiness`] model.
///
/// Under a [`Readiness::Barrier`] the old semantics apply exactly: every
/// frame arriving before the barrier instant is dropped. Under
/// [`Readiness::PerChiplet`] the handover is make-before-break — chiplets
/// that keep their program keep serving across the boundary (their
/// in-flight frames survive), only re-programmed chiplets stall, and a
/// frame is dropped only when its critical path would land on a chiplet
/// that is still reloading when the wavefront reaches it (the
/// arrival-time gate is exact because DES contention only ever delays
/// item starts past their dependency-chain earliest times).
///
/// In-flight frames cross boundaries according to the *next* phase's
/// handover: a make-before-break switch lets the outgoing queues drain
/// (`cutoff = None`), a full-barrier switch quiesces the package and
/// flushes them (`cutoff = Some(boundary)`), counted per phase so
/// `offered == served + dropped + flushed` always balances. Per-phase
/// busy fractions are relative to each phase's own span.
///
/// A single phase with readiness at or before its first arrival is
/// exactly [`simulate`] — same event order, bit-identical statistics —
/// which the cross-validation suite pins.
///
/// # Panics
///
/// Panics if a phase's schedule is empty or its times are not finite and
/// non-decreasing.
pub fn simulate_phases(
    phases: &[SimPhase<'_>],
    pkg: &McmPackage,
    model: &dyn CostModel,
    dtype: Dtype,
) -> Vec<PhaseReport> {
    // Flattening a schedule walks every layer shard through the cost
    // model; drives re-enter the same compiled schedule for many phases,
    // so cache flattened items per schedule. Keying on the reference's
    // address is sound here: every phase borrows its schedule for the
    // whole call, so two equal pointers are the same live `Schedule`.
    let mut flat_cache: BTreeMap<*const Schedule, Vec<SimItem>> = BTreeMap::new();
    phases
        .iter()
        .map(|phase| {
            assert!(
                phase.times.windows(2).all(|w| w[0] <= w[1])
                    && phase.times.iter().all(|t| t.is_finite()),
                "phase arrivals must be finite and non-decreasing"
            );
            phase.readiness.assert_finite();
            let items = flat_cache
                .entry(phase.schedule as *const Schedule)
                .or_insert_with(|| flatten_items(phase.schedule, pkg, model, dtype));
            let gate = admission_gate(items, &phase.readiness);
            // Times are non-decreasing, so the served frames are exactly
            // the suffix from the first arrival at or after the gate.
            let first_served = phase.times.partition_point(|&t| t < gate);
            let served = &phase.times[first_served..];
            // Post-drop trim (the offered count would misalign the
            // steady-state window after a heavy-drop transition).
            let warmup = phase
                .warmup
                .unwrap_or_else(|| SimConfig::default_warmup(served.len()));
            let (report, stats) = run_items(items, served, warmup, phase.cutoff);
            PhaseReport {
                report,
                offered: phase.times.len(),
                dropped: first_served,
                flushed: stats.flushed,
                admitted_from: gate,
            }
        })
        .collect()
}

/// One pooled in-flight frame: per-item remaining-dependency counters
/// (reset from the template on reuse) plus the count of items left.
struct FrameSlot {
    deps_left: Vec<u32>,
    remaining: u32,
}

/// The rebuilt DES core. Peak memory is O(items × in-flight frames), not
/// O(items × frames):
///
/// - frame dependency state lives in a recycled pool slot, allocated when
///   the frame's **first job starts** (not when it arrives — a saturated
///   run offers every frame at t = 0) and freed when its last completes;
/// - arrivals are walked with a cursor (`arrived`) and interleaved with
///   the completion calendar in time order instead of being heaped
///   upfront, with arrivals winning time ties exactly like the old
///   engine's low-seq arrival events did;
/// - root jobs (no dependencies) of arrived frames are represented by a
///   per-chiplet **virtual cursor** over `roots` instead of queue
///   entries, so a backlog of arrived-but-unstarted frames costs nothing;
/// - chiplet state is dense `Vec`s indexed by the schedule's sorted
///   distinct chiplet list, built once per run;
/// - statistics stream through [`ReportBuilder`] via a small reorder ring
///   that commits completions back into frame order.
struct Engine<'a> {
    items: &'a [SimItem],
    times: &'a [f64],

    // Per-schedule prep (immutable during the run).
    /// Sorted distinct chiplets hosting work; dense index = position.
    chiplet_ids: Vec<ChipletId>,
    /// Dense chiplet index of each item.
    chiplet_of: Vec<u32>,
    /// Service time of each item in seconds.
    durations: Vec<f64>,
    /// Reverse dependency lists, ascending item order.
    dependents: Vec<Vec<u32>>,
    /// Dependency counts, copied into a pool slot on (re)allocation.
    deps_template: Vec<u32>,
    /// Per-chiplet root items (empty deps), ascending item order.
    roots: Vec<Vec<u32>>,
    /// Dense chiplet index of each root item in item order: the dispatch
    /// fan-out of one frame arrival.
    root_dispatch: Vec<u32>,

    // Event calendar: item completions only.
    heap: BinaryHeap<Scheduled>,
    seq: u64,
    /// Next-arrival cursor: frames `0..arrived` have arrived.
    arrived: usize,

    // Per-chiplet executors (dense).
    /// Ready non-root jobs per chiplet (roots stay virtual).
    queues: Vec<BinaryHeap<Job>>,
    busy_until: Vec<f64>,
    busy_time: Vec<f64>,
    /// Virtual root cursor: the earliest not-yet-started root job on
    /// chiplet `c` is `(v_frame[c], roots[c][v_idx[c]])`.
    v_frame: Vec<usize>,
    v_idx: Vec<usize>,

    // Bounded in-flight frame pool.
    pool: Vec<FrameSlot>,
    free_slots: Vec<u32>,
    slot_of_frame: BTreeMap<usize, u32>,
    peak_in_flight: usize,

    // Streaming report.
    /// Completion reorder ring: `commit[i]` holds the completion time of
    /// frame `commit_next + i` (NaN = still in flight). Completions
    /// commit out of frame order; the ring drains them back in order.
    commit: VecDeque<f64>,
    commit_next: usize,
    report: ReportBuilder,
}

impl<'a> Engine<'a> {
    fn new(
        items: &'a [SimItem],
        times: &'a [f64],
        warmup: usize,
        cutoff: Option<f64>,
    ) -> Engine<'a> {
        let n_items = items.len();
        let mut chiplet_ids: Vec<ChipletId> = items.iter().map(|it| it.chiplet).collect();
        chiplet_ids.sort_unstable();
        chiplet_ids.dedup();
        let dense = |c: ChipletId| {
            chiplet_ids
                .binary_search(&c)
                .expect("chiplet registered by prep") as u32
        };

        let chiplet_of: Vec<u32> = items.iter().map(|it| dense(it.chiplet)).collect();
        let durations: Vec<f64> = items.iter().map(|it| it.duration.as_secs()).collect();
        let mut dependents: Vec<Vec<u32>> = vec![Vec::new(); n_items];
        for (i, item) in items.iter().enumerate() {
            for &d in &item.deps {
                dependents[d].push(i as u32);
            }
        }
        let deps_template: Vec<u32> = items.iter().map(|it| it.deps.len() as u32).collect();
        let mut roots: Vec<Vec<u32>> = vec![Vec::new(); chiplet_ids.len()];
        let mut root_dispatch: Vec<u32> = Vec::new();
        for (i, item) in items.iter().enumerate() {
            if item.deps.is_empty() {
                roots[chiplet_of[i] as usize].push(i as u32);
                root_dispatch.push(chiplet_of[i]);
            }
        }

        let n_chiplets = chiplet_ids.len();
        Engine {
            items,
            times,
            chiplet_of,
            durations,
            dependents,
            deps_template,
            roots,
            root_dispatch,
            heap: BinaryHeap::new(),
            seq: 0,
            arrived: 0,
            queues: (0..n_chiplets).map(|_| BinaryHeap::new()).collect(),
            busy_until: vec![0.0; n_chiplets],
            busy_time: vec![0.0; n_chiplets],
            v_frame: vec![0; n_chiplets],
            v_idx: vec![0; n_chiplets],
            pool: Vec::new(),
            free_slots: Vec::new(),
            slot_of_frame: BTreeMap::new(),
            peak_in_flight: 0,
            commit: VecDeque::new(),
            commit_next: 0,
            report: ReportBuilder::new(times.len(), warmup, cutoff),
            chiplet_ids,
        }
    }

    fn run(mut self) -> (SimReport, EngineStats) {
        loop {
            // Interleave the arrival cursor with the completion calendar
            // in time order; `<=` lets arrivals win ties, matching the
            // event order of the heaped-arrivals engine bit for bit.
            let arrival_due = match (self.times.get(self.arrived), self.heap.peek()) {
                (Some(&t), Some(top)) => t <= top.time,
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => break,
            };
            if arrival_due {
                self.process_arrival();
            } else {
                self.process_completion();
            }
        }
        debug_assert_eq!(self.commit_next, self.times.len(), "all frames committed");
        debug_assert_eq!(self.slot_of_frame.len(), 0, "all slots recycled");

        let busy: BTreeMap<ChipletId, f64> = self
            .chiplet_ids
            .iter()
            .zip(&self.busy_time)
            .map(|(&c, &b)| (c, b))
            .collect();
        let stats = EngineStats {
            frames: self.times.len(),
            peak_in_flight: self.peak_in_flight,
            flushed: self.report.flushed(),
        };
        (self.report.finish(&busy), stats)
    }

    /// Admits the next frame: advances the cursor and offers each root
    /// job's chiplet a dispatch, in item order — the same per-root
    /// enqueue-then-dispatch cadence as the old arrival event.
    fn process_arrival(&mut self) {
        let now = self.times[self.arrived];
        self.arrived += 1;
        for i in 0..self.root_dispatch.len() {
            self.dispatch(self.root_dispatch[i] as usize, now);
        }
    }

    /// Starts the next ready job on chiplet `c` if it is free: the
    /// earliest of the explicit queue head and the virtual root cursor
    /// by (frame, item) — roots never sit in the explicit queue, so the
    /// two heads cannot tie.
    fn dispatch(&mut self, c: usize, now: f64) {
        if self.busy_until[c] > now {
            return;
        }
        let v = if !self.roots[c].is_empty() && self.v_frame[c] < self.arrived {
            Some((self.v_frame[c], self.roots[c][self.v_idx[c]]))
        } else {
            None
        };
        let e = self.queues[c].peek().map(|j| (j.frame, j.item));
        let job = match (e, v) {
            (Some(e), Some(v)) if e <= v => self.queues[c].pop().expect("peeked"),
            (Some(_), None) => self.queues[c].pop().expect("peeked"),
            (None, Some(_)) | (Some(_), Some(_)) => self.take_virtual(c),
            (None, None) => return,
        };
        self.start(c, job, now);
    }

    /// Materializes the virtual root cursor's head into a real job,
    /// allocating (or reusing) the frame's pool slot — the first moment
    /// the frame costs any per-frame memory.
    fn take_virtual(&mut self, c: usize) -> Job {
        let frame = self.v_frame[c];
        let item = self.roots[c][self.v_idx[c]];
        self.v_idx[c] += 1;
        if self.v_idx[c] == self.roots[c].len() {
            self.v_idx[c] = 0;
            self.v_frame[c] += 1;
        }
        let slot = self.slot_for(frame);
        Job { frame, item, slot }
    }

    /// The frame's pool slot: existing, recycled off the free list, or —
    /// only when every slot is genuinely in flight — freshly grown.
    fn slot_for(&mut self, frame: usize) -> u32 {
        if let Some(&s) = self.slot_of_frame.get(&frame) {
            return s;
        }
        let s = match self.free_slots.pop() {
            Some(s) => {
                let slot = &mut self.pool[s as usize];
                slot.deps_left.copy_from_slice(&self.deps_template);
                slot.remaining = self.items.len() as u32;
                s
            }
            None => {
                self.pool.push(FrameSlot {
                    deps_left: self.deps_template.clone(),
                    remaining: self.items.len() as u32,
                });
                (self.pool.len() - 1) as u32
            }
        };
        self.slot_of_frame.insert(frame, s);
        self.peak_in_flight = self.peak_in_flight.max(self.slot_of_frame.len());
        s
    }

    fn start(&mut self, c: usize, job: Job, now: f64) {
        let dur = self.durations[job.item as usize];
        self.busy_until[c] = now + dur;
        self.busy_time[c] += dur;
        self.seq += 1;
        self.heap.push(Scheduled {
            time: now + dur,
            seq: self.seq,
            chiplet: c as u32,
            job,
        });
    }

    fn process_completion(&mut self) {
        let Scheduled {
            time, chiplet, job, ..
        } = self.heap.pop().expect("completion event due");
        let s = job.slot as usize;
        let item = job.item as usize;
        self.pool[s].remaining -= 1;
        if self.pool[s].remaining == 0 {
            // The frame's last item has no incomplete dependents (a
            // dependent cannot finish before its dependency), so the
            // slot retires immediately.
            debug_assert!(self.dependents[item].is_empty(), "last item has dependents");
            self.slot_of_frame.remove(&job.frame);
            self.free_slots.push(job.slot);
            self.commit_completion(job.frame, time);
        } else {
            for di in 0..self.dependents[item].len() {
                let succ = self.dependents[item][di] as usize;
                self.pool[s].deps_left[succ] -= 1;
                if self.pool[s].deps_left[succ] == 0 {
                    let c2 = self.chiplet_of[succ] as usize;
                    self.queues[c2].push(Job {
                        frame: job.frame,
                        item: succ as u32,
                        slot: job.slot,
                    });
                    self.dispatch(c2, time);
                }
            }
        }
        self.dispatch(chiplet as usize, time);
    }

    /// Parks an out-of-order completion in the reorder ring and drains
    /// every now-contiguous frame into the streaming report.
    fn commit_completion(&mut self, frame: usize, time: f64) {
        let pos = frame - self.commit_next;
        if pos >= self.commit.len() {
            self.commit.resize(pos + 1, f64::NAN);
        }
        self.commit[pos] = time;
        while let Some(&front) = self.commit.front() {
            if front.is_nan() {
                break;
            }
            self.commit.pop_front();
            self.report
                .record(self.commit_next, self.times[self.commit_next], front);
            self.commit_next += 1;
        }
    }
}

/// The discrete-event core: drives one frame per entry of `times`
/// (absolute arrival timestamps) through the flattened items, streaming
/// statistics as frames commit. Frames completing past `cutoff` are
/// counted flushed instead of measured. See [`Engine`] for the memory
/// bound.
fn run_items(
    items: &[SimItem],
    times: &[f64],
    warmup: usize,
    cutoff: Option<f64>,
) -> (SimReport, EngineStats) {
    assert!(!items.is_empty(), "cannot simulate an empty schedule");
    Engine::new(items, times, warmup, cutoff).run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use npu_dnn::models::attention::{fusion_block, FusionConfig};
    use npu_dnn::StageKind;
    use npu_maestro::FittedMaestro;
    use npu_sched::{LayerPlan, ModelPlan, StagePlan};
    use npu_tensor::Seconds;

    /// Small-run warmup clamping: a quarter of the run per end, capped
    /// at 4, so `frames ≤ 4` never trims the window away.
    #[test]
    fn default_warmup_clamps_small_runs() {
        for (frames, expected) in [
            (0, 0),
            (1, 0),
            (2, 0),
            (3, 0),
            (4, 1),
            (8, 2),
            (12, 3),
            (16, 4),
            (1000, 4),
        ] {
            assert_eq!(
                SimConfig::saturated(frames).warmup,
                expected,
                "saturated({frames})"
            );
            assert_eq!(
                SimConfig::camera(frames, 30.0).warmup,
                expected,
                "camera({frames})"
            );
        }
    }

    /// A `frames ≤ 4` saturation run keeps a non-degenerate window: the
    /// interval comes from real completion deltas, not the fallback.
    #[test]
    fn four_frame_run_measures_a_real_interval() {
        let g = fusion_block(&FusionConfig::spatial_default());
        let pkg = McmPackage::simba_6x6();
        let model = FittedMaestro::new();
        let schedule = Schedule {
            stages: vec![StagePlan {
                kind: StageKind::SpatialFusion,
                models: vec![ModelPlan::on_single_chiplet("s", g, ChipletId(0))],
                region: vec![ChipletId(0)],
            }],
        };
        let rep = simulate(&schedule, &pkg, &model, &SimConfig::saturated(4));
        // warmup = 1 per end: two frames stay measurable.
        assert_eq!(rep.measured_frames, 2);
        let analytic = npu_sched::evaluate(&schedule, &pkg, &model, Dtype::Fp16).pipe;
        let rel = (rep.steady_interval.as_secs() / analytic.as_secs() - 1.0).abs();
        assert!(
            rel < 1e-9,
            "DES {} vs analytic {}",
            rep.steady_interval,
            analytic
        );
    }

    /// A chain on a single chiplet: interval must equal the serial sum.
    #[test]
    fn single_chiplet_chain_interval_is_serial_sum() {
        let g = fusion_block(&FusionConfig::spatial_default());
        let pkg = McmPackage::simba_6x6();
        let model = FittedMaestro::new();
        let schedule = Schedule {
            stages: vec![StagePlan {
                kind: StageKind::SpatialFusion,
                models: vec![ModelPlan::on_single_chiplet("s", g, ChipletId(0))],
                region: vec![ChipletId(0)],
            }],
        };
        let rep = simulate(&schedule, &pkg, &model, &SimConfig::saturated(8));
        let analytic = npu_sched::evaluate(&schedule, &pkg, &model, Dtype::Fp16).pipe;
        let rel = (rep.steady_interval.as_secs() / analytic.as_secs() - 1.0).abs();
        assert!(
            rel < 1e-9,
            "DES {} vs analytic {}",
            rep.steady_interval,
            analytic
        );
    }

    /// Two chiplets in a chain pipeline at the busier one's rate.
    #[test]
    fn two_stage_chain_pipelines() {
        let g = fusion_block(&FusionConfig::spatial_default());
        let pkg = McmPackage::simba_6x6();
        let model = FittedMaestro::new();
        // qkv on c0, everything else on c1.
        let mut mp = ModelPlan::on_single_chiplet("s", g.clone(), ChipletId(1));
        let qkv = g.find("s_fuse.qkv").unwrap();
        *mp.layer_plan_mut(qkv) = LayerPlan::single(g.layer(qkv).clone(), ChipletId(0));
        let schedule = Schedule {
            stages: vec![StagePlan {
                kind: StageKind::SpatialFusion,
                models: vec![mp],
                region: vec![ChipletId(0), ChipletId(1)],
            }],
        };
        let rep = simulate(&schedule, &pkg, &model, &SimConfig::saturated(12));
        let analytic = npu_sched::evaluate(&schedule, &pkg, &model, Dtype::Fp16).pipe;
        let rel = (rep.steady_interval.as_secs() / analytic.as_secs() - 1.0).abs();
        assert!(
            rel < 0.02,
            "DES {} vs analytic {}",
            rep.steady_interval,
            analytic
        );
        // Latency of one frame exceeds the interval (pipelining).
        assert!(rep.mean_latency > rep.steady_interval);
    }

    /// Jittered arrivals stay deterministic per seed and do not change
    /// the saturation throughput.
    #[test]
    fn jitter_is_deterministic_and_bounded() {
        let g = fusion_block(&FusionConfig::spatial_default());
        let pkg = McmPackage::simba_6x6();
        let model = FittedMaestro::new();
        let schedule = Schedule {
            stages: vec![StagePlan {
                kind: StageKind::SpatialFusion,
                models: vec![ModelPlan::on_single_chiplet("s", g, ChipletId(0))],
                region: vec![ChipletId(0)],
            }],
        };
        let cfg = SimConfig::camera(10, 2.0).with_jitter(0.2, 42);
        let a = simulate(&schedule, &pkg, &model, &cfg);
        let b = simulate(&schedule, &pkg, &model, &cfg);
        assert_eq!(a, b, "same seed, same result");
        let other = simulate(
            &schedule,
            &pkg,
            &model,
            &SimConfig::camera(10, 2.0).with_jitter(0.2, 7),
        );
        // Jittered completions shift the measured interval per seed.
        assert_ne!(a.steady_interval, other.steady_interval, "seed matters");
        // Jitter shifts arrivals by < one interval: latency stays sane.
        assert!(a.max_latency.as_secs() < 1.5);
    }

    #[test]
    #[should_panic(expected = "finite and positive")]
    fn camera_rejects_zero_fps() {
        let _ = SimConfig::camera(8, 0.0);
    }

    #[test]
    #[should_panic(expected = "finite and positive")]
    fn camera_rejects_non_finite_fps() {
        let _ = SimConfig::camera(8, f64::INFINITY);
    }

    /// Out-of-range jitter fractions clamp into `[0, 1)` instead of
    /// poisoning arrival times (NaN clamps to zero).
    #[test]
    fn jitter_fraction_is_clamped() {
        let frac = |cfg: &SimConfig| match cfg.arrivals {
            Arrivals::Jittered { frac, .. } => frac,
            ref a => panic!("expected jittered arrivals, got {a:?}"),
        };
        let base = || SimConfig::camera(8, 30.0);
        assert_eq!(frac(&base().with_jitter(1.5, 0)), Arrivals::MAX_JITTER);
        assert_eq!(frac(&base().with_jitter(-0.3, 0)), 0.0);
        assert_eq!(frac(&base().with_jitter(f64::NAN, 0)), 0.0);
        assert_eq!(frac(&base().with_jitter(0.25, 0)), 0.25);
        // Every clamped config expands to finite arrival times.
        for cfg in [base().with_jitter(1.5, 1), base().with_jitter(f64::NAN, 1)] {
            assert!(cfg.arrivals.times(cfg.frames).iter().all(|t| t.is_finite()));
        }
        // Saturation has no interval to jitter: unchanged.
        let sat = SimConfig::saturated(8).with_jitter(0.5, 1);
        assert_eq!(sat.arrivals, Arrivals::Saturated);
    }

    /// Bursty arrivals: the steady interval settles at the mean burst
    /// rate when the pipeline keeps up.
    #[test]
    fn bursty_arrivals_settle_at_mean_rate() {
        let g = fusion_block(&FusionConfig::spatial_default());
        let pkg = McmPackage::simba_6x6();
        let model = FittedMaestro::new();
        let schedule = Schedule {
            stages: vec![StagePlan {
                kind: StageKind::SpatialFusion,
                models: vec![ModelPlan::on_single_chiplet("s", g, ChipletId(0))],
                region: vec![ChipletId(0)],
            }],
        };
        // Bursts of 4 frames every 4 s: mean interval 1 s, and both the
        // 0.4 s intra-burst spacing and the inter-burst gap exceed the
        // ~366 ms service time, so every frame is arrival-limited. 17
        // frames with the default warmup of 4 puts the measured window at
        // frames 4..=12 — exactly two whole bursts, so the windowed
        // interval estimator sees the mean rate with no phase bias.
        let arrivals = Arrivals::Bursty {
            period: Seconds::new(4.0),
            burst: 4,
            intra: Seconds::new(0.4),
        };
        let rep = simulate(
            &schedule,
            &pkg,
            &model,
            &SimConfig::with_arrivals(17, arrivals.clone()),
        );
        let mean = arrivals.mean_interval().unwrap().as_secs();
        let rel = (rep.steady_interval.as_secs() / mean - 1.0).abs();
        assert!(rel < 1e-9, "DES {} vs mean {}", rep.steady_interval, mean);
    }

    /// Trace replay reproduces recorded arrival times exactly.
    #[test]
    fn trace_replay_is_exact_and_deterministic() {
        let g = fusion_block(&FusionConfig::spatial_default());
        let pkg = McmPackage::simba_6x6();
        let model = FittedMaestro::new();
        let schedule = Schedule {
            stages: vec![StagePlan {
                kind: StageKind::SpatialFusion,
                models: vec![ModelPlan::on_single_chiplet("s", g, ChipletId(0))],
                region: vec![ChipletId(0)],
            }],
        };
        let trace = Arrivals::trace(vec![
            Seconds::new(0.0),
            Seconds::new(0.5),
            Seconds::new(1.2),
            Seconds::new(2.0),
        ]);
        let cfg = SimConfig::with_arrivals(8, trace);
        let a = simulate(&schedule, &pkg, &model, &cfg);
        let b = simulate(&schedule, &pkg, &model, &cfg);
        assert_eq!(a, b, "trace replay is deterministic");
        assert!(a.measured_frames > 0);
    }

    /// Regression (ISSUE 8): busy fractions must divide by the run's
    /// observed span, not the absolute completion clock. A phase starting
    /// at t ≫ 0 used to underreport utilization by its offset — the same
    /// workload shifted 100 s later looked ~100× idler.
    #[test]
    fn busy_fraction_is_offset_invariant() {
        let g = fusion_block(&FusionConfig::spatial_default());
        let pkg = McmPackage::simba_6x6();
        let model = FittedMaestro::new();
        let schedule = Schedule {
            stages: vec![StagePlan {
                kind: StageKind::SpatialFusion,
                models: vec![ModelPlan::on_single_chiplet("s", g, ChipletId(0))],
                region: vec![ChipletId(0)],
            }],
        };
        let times: Vec<f64> = (0..8).map(|f| f as f64 * 0.5).collect();
        let phase_at = |offset: f64| SimPhase {
            schedule: &schedule,
            times: times.iter().map(|t| t + offset).collect(),
            readiness: Readiness::Barrier(offset),
            warmup: Some(1),
            cutoff: None,
        };
        let base = &simulate_phases(&[phase_at(0.0)], &pkg, &model, Dtype::Fp16)[0];
        let late = &simulate_phases(&[phase_at(100.0)], &pkg, &model, Dtype::Fp16)[0];
        let b0 = base.report.busy_fraction(ChipletId(0)).unwrap();
        let b1 = late.report.busy_fraction(ChipletId(0)).unwrap();
        assert!(b0 > 0.1, "workload keeps the chiplet visibly busy: {b0}");
        // Equal up to the rounding of (100 + c) - (100 + a); the old
        // makespan-normalized code reported b1 ≈ b0 / 26 here.
        assert!(
            (b1 / b0 - 1.0).abs() < 1e-9,
            "offset by 100 s changed utilization: {b0} vs {b1}"
        );
    }

    /// A phase whose frames all land inside the re-match window serves
    /// nothing: `served()` is 0 and the report is the zero-frame report,
    /// with no O(frames) scratch behind it.
    #[test]
    fn all_frames_dropped_phase_reports_zero() {
        let g = fusion_block(&FusionConfig::spatial_default());
        let pkg = McmPackage::simba_6x6();
        let model = FittedMaestro::new();
        let schedule = Schedule {
            stages: vec![StagePlan {
                kind: StageKind::SpatialFusion,
                models: vec![ModelPlan::on_single_chiplet("s", g, ChipletId(0))],
                region: vec![ChipletId(0)],
            }],
        };
        let phase = SimPhase {
            schedule: &schedule,
            times: vec![0.0, 0.1, 0.2],
            readiness: Readiness::Barrier(1.0),
            warmup: Some(1),
            cutoff: None,
        };
        let rep = &simulate_phases(&[phase], &pkg, &model, Dtype::Fp16)[0];
        assert_eq!(rep.offered, 3);
        assert_eq!(rep.dropped, 3);
        assert_eq!(rep.served(), 0);
        assert_eq!(rep.report.measured_frames, 0);
        assert!(rep.report.steady_interval.is_zero());
        assert_eq!(rep.report.busy_fraction(ChipletId(0)), Some(0.0));
    }

    /// The admission gate charges each stalled chiplet's ready time
    /// minus its earliest wavefront offset, clamped to the switch
    /// instant, and ignores stalled chiplets hosting no work.
    #[test]
    fn admission_gate_uses_the_wavefront_offset() {
        use npu_sched::SimItem;
        // c0 feeds c1: a frame reaches c1 only 0.3 s after arrival.
        let items = vec![
            SimItem {
                name: "s/m/a#0".into(),
                chiplet: ChipletId(0),
                duration: Seconds::new(0.3),
                deps: vec![],
            },
            SimItem {
                name: "s/m/b#0".into(),
                chiplet: ChipletId(1),
                duration: Seconds::new(0.1),
                deps: vec![0],
            },
        ];
        let gate = |ready: Vec<(ChipletId, f64)>| {
            admission_gate(&items, &Readiness::PerChiplet { at: 5.0, ready })
        };
        // Barrier passes through untouched.
        assert_eq!(admission_gate(&items, &Readiness::Barrier(7.5)), 7.5);
        // The downstream chiplet's reload hides behind the wavefront:
        // a frame admitted at 5.0 cannot touch c1 before 5.3.
        assert_eq!(gate(vec![(ChipletId(1), 5.2)]), 5.0);
        // Only the excess over the offset gates admission.
        assert!((gate(vec![(ChipletId(1), 5.4)]) - 5.1).abs() < 1e-12);
        // An entry chiplet has no offset to hide behind: full charge.
        assert_eq!(gate(vec![(ChipletId(0), 5.4)]), 5.4);
        // A stalled chiplet hosting no items gates nothing.
        assert_eq!(gate(vec![(ChipletId(9), 99.0)]), 5.0);
        // The gate is the max over all stalled chiplets.
        assert_eq!(gate(vec![(ChipletId(0), 5.4), (ChipletId(1), 5.2)]), 5.4);
    }

    /// A make-before-break handover that stalls only a downstream
    /// chiplet admits frames the package-wide barrier would drop; one
    /// that stalls the entry chiplet degenerates to the barrier.
    #[test]
    fn make_before_break_admits_earlier_than_the_barrier() {
        let g = fusion_block(&FusionConfig::spatial_default());
        let pkg = McmPackage::simba_6x6();
        let model = FittedMaestro::new();
        // Trunk on c0 (~360 ms of wavefront offset), output compression
        // on c1.
        let mut mp = ModelPlan::on_single_chiplet("s", g.clone(), ChipletId(0));
        let out = g.find("s_fuse.compress").unwrap();
        *mp.layer_plan_mut(out) = LayerPlan::single(g.layer(out).clone(), ChipletId(1));
        let schedule = Schedule {
            stages: vec![StagePlan {
                kind: StageKind::SpatialFusion,
                models: vec![mp],
                region: vec![ChipletId(0), ChipletId(1)],
            }],
        };
        let times: Vec<f64> = (0..8).map(|f| f as f64 * 0.025).collect();
        let run = |readiness: Readiness| {
            let phase = SimPhase {
                schedule: &schedule,
                times: times.clone(),
                readiness,
                warmup: Some(0),
                cutoff: None,
            };
            simulate_phases(&[phase], &pkg, &model, Dtype::Fp16)[0].clone()
        };
        let barrier = run(Readiness::Barrier(0.1));
        assert_eq!(barrier.dropped, 4, "frames before 0.1 s die at the barrier");
        // The same 0.1 s reload on the downstream chiplet hides entirely
        // behind the trunk's wavefront offset: nothing is dropped.
        let mbb = run(Readiness::PerChiplet {
            at: 0.0,
            ready: vec![(ChipletId(1), 0.1)],
        });
        assert_eq!(mbb.dropped, 0);
        assert_eq!(mbb.admitted_from, 0.0);
        assert!(mbb.served() > barrier.served());
        // Stalling the entry chiplet leaves no offset to hide behind —
        // bit-identical to the barrier.
        let entry = run(Readiness::PerChiplet {
            at: 0.0,
            ready: vec![(ChipletId(0), 0.1)],
        });
        assert_eq!(entry.dropped, barrier.dropped);
        assert_eq!(entry.report, barrier.report);
    }

    /// A boundary cutoff flushes frames still in flight at the instant
    /// the package quiesces, and the accounting balances:
    /// `offered == served + dropped + flushed`.
    #[test]
    fn boundary_cutoff_flushes_in_flight_frames() {
        let g = fusion_block(&FusionConfig::spatial_default());
        let pkg = McmPackage::simba_6x6();
        let model = FittedMaestro::new();
        let schedule = Schedule {
            stages: vec![StagePlan {
                kind: StageKind::SpatialFusion,
                models: vec![ModelPlan::on_single_chiplet("s", g, ChipletId(0))],
                region: vec![ChipletId(0)],
            }],
        };
        // Four frames offered at t = 0 against a ~366 ms service time:
        // completions land near 0.37/0.73/1.10/1.46 s.
        let run = |cutoff: Option<f64>| {
            let phase = SimPhase {
                schedule: &schedule,
                times: vec![0.0; 4],
                readiness: Readiness::Barrier(0.0),
                warmup: Some(0),
                cutoff,
            };
            simulate_phases(&[phase], &pkg, &model, Dtype::Fp16)[0].clone()
        };
        let drain = run(None);
        assert_eq!((drain.dropped, drain.flushed, drain.served()), (0, 0, 4));
        let flushed = run(Some(0.8));
        assert_eq!(flushed.offered, 4);
        assert_eq!(flushed.dropped, 0);
        assert_eq!(flushed.flushed, 2, "two frames were in flight at 0.8 s");
        assert_eq!(
            flushed.offered,
            flushed.served() + flushed.dropped + flushed.flushed
        );
        // Flushed frames leave the steady-state window: the surviving
        // statistics cover only frames that completed before the cutoff.
        assert_eq!(flushed.report.measured_frames, 2);
        assert!(flushed.report.max_latency < drain.report.max_latency);
    }

    /// The in-flight frame pool stays bounded by the schedule's natural
    /// pipelining depth even when every frame is offered at t = 0, as
    /// long as the entry stage is the bottleneck. (With an unthrottled
    /// downstream bottleneck WIP genuinely accumulates — the pool then
    /// tracks that real occupancy instead of pre-allocating all frames.)
    #[test]
    fn saturated_pool_stays_bounded() {
        let g = fusion_block(&FusionConfig::spatial_default());
        let pkg = McmPackage::simba_6x6();
        let model = FittedMaestro::new();
        // Heavy trunk on chiplet 0 (the entry bottleneck), the cheap
        // output compression on chiplet 1: frames drain as fast as they
        // clear the trunk, so only a couple are ever in flight.
        let mut mp = ModelPlan::on_single_chiplet("s", g.clone(), ChipletId(0));
        let out = g.find("s_fuse.compress").unwrap();
        *mp.layer_plan_mut(out) = LayerPlan::single(g.layer(out).clone(), ChipletId(1));
        let schedule = Schedule {
            stages: vec![StagePlan {
                kind: StageKind::SpatialFusion,
                models: vec![mp],
                region: vec![ChipletId(0), ChipletId(1)],
            }],
        };
        let (rep, stats) =
            simulate_with_stats(&schedule, &pkg, &model, &SimConfig::saturated(2_000));
        assert_eq!(stats.frames, 2_000);
        assert!(rep.measured_frames > 0);
        assert!(
            (1..=4).contains(&stats.peak_in_flight),
            "an entry-bottleneck pipeline keeps a couple of frames in flight, got {}",
            stats.peak_in_flight
        );
    }

    /// With slow arrivals the pipeline is arrival-limited.
    #[test]
    fn arrival_limited_at_low_fps() {
        let g = fusion_block(&FusionConfig::spatial_default());
        let pkg = McmPackage::simba_6x6();
        let model = FittedMaestro::new();
        let schedule = Schedule {
            stages: vec![StagePlan {
                kind: StageKind::SpatialFusion,
                models: vec![ModelPlan::on_single_chiplet("s", g, ChipletId(0))],
                region: vec![ChipletId(0)],
            }],
        };
        // One frame per second: far slower than the ~366 ms service time.
        let rep = simulate(&schedule, &pkg, &model, &SimConfig::camera(8, 1.0));
        assert!((rep.steady_interval.as_secs() - 1.0).abs() < 1e-9);
        // Utilization is low: the chiplet idles between frames.
        assert!(rep.busy_fraction(ChipletId(0)).unwrap() < 0.5);
    }
}
