//! Discrete-event simulation of a scheduled perception pipeline.
//!
//! The paper (and `npu-sched`) computes pipelining latency *analytically*
//! as the maximum per-chiplet busy time. This crate executes a schedule as
//! a discrete-event simulation — frames enter under a configurable
//! [`Arrivals`] process (saturation, periodic camera, jittered, bursty,
//! or trace replay), every layer shard is a job on its chiplet's FIFO
//! queue, dependencies gate job starts — and measures the steady-state
//! frame interval and latency *empirically*. Agreement between the two is
//! a strong internal consistency check (see `validate`), and
//! `npu-scenario` compiles whole driving scenarios down to these arrival
//! processes.
//!
//! # Examples
//!
//! ```
//! use npu_dnn::PerceptionConfig;
//! use npu_maestro::FittedMaestro;
//! use npu_mcm::McmPackage;
//! use npu_pipesim::{simulate, SimConfig};
//! use npu_sched::{MatcherConfig, ThroughputMatcher};
//!
//! let pipeline = PerceptionConfig::default().build();
//! let pkg = McmPackage::simba_6x6();
//! let model = FittedMaestro::new();
//! let outcome = ThroughputMatcher::new(&model, MatcherConfig::default())
//!     .match_throughput(&pipeline, &pkg);
//! let report = simulate(&outcome.schedule, &pkg, &model, &SimConfig::saturated(20));
//! // The DES inter-departure interval reproduces the analytical pipe
//! // latency within a few percent.
//! let rel = (report.steady_interval.as_secs() / outcome.report.pipe.as_secs() - 1.0).abs();
//! assert!(rel < 0.1, "DES {} vs analytic {}", report.steady_interval, outcome.report.pipe);
//! ```

pub mod arrivals;
pub mod engine;
pub mod report;

pub use arrivals::Arrivals;
pub use engine::{simulate, SimConfig};
pub use report::SimReport;
