//! Discrete-event simulation of a scheduled perception pipeline.
//!
//! The paper (and `npu-sched`) computes pipelining latency *analytically*
//! as the maximum per-chiplet busy time. This crate executes a schedule as
//! a discrete-event simulation — frames enter under a configurable
//! [`Arrivals`] process (saturation, periodic camera, jittered, bursty,
//! trace replay, or a piecewise timeline of those), every layer shard is
//! a job on its chiplet's FIFO queue, dependencies gate job starts — and
//! measures the steady-state frame interval and latency *empirically*.
//! Agreement between the two is a strong internal consistency check (see
//! `validate`), and `npu-scenario` compiles whole driving scenarios down
//! to these arrival processes.
//!
//! Three simulation surfaces are exposed:
//!
//! * [`simulate`] — one schedule serving one arrival process (the
//!   steady-state workbench);
//! * [`simulate_phases`] — a time-varying run in which each
//!   [`SimPhase`] swaps in its own compiled schedule at a phase
//!   boundary, charging a mapping spin-up window during which arriving
//!   frames are dropped (`npu-scenario`'s `Drive` timelines compile to
//!   this);
//! * [`simulate_tenants`] — K tenant streams ([`TenantStream`]) sharing
//!   one event calendar, each with its own schedule, arrivals and
//!   spin-up window, yielding one tenant-tagged report per stream
//!   (`npu-fleet`'s co-scheduler compiles to this).
//!
//! Recorded camera logs load through [`Arrivals::from_csv_str`] /
//! [`Arrivals::from_jsonl_str`] (string input only — callers do the
//! I/O), with malformed logs rejected via [`TraceError`].
//!
//! # Examples
//!
//! ```
//! use npu_dnn::PerceptionConfig;
//! use npu_maestro::FittedMaestro;
//! use npu_mcm::McmPackage;
//! use npu_pipesim::{simulate, SimConfig};
//! use npu_sched::{MatcherConfig, ThroughputMatcher};
//!
//! let pipeline = PerceptionConfig::default().build();
//! let pkg = McmPackage::simba_6x6();
//! let model = FittedMaestro::new();
//! let outcome = ThroughputMatcher::new(&model, MatcherConfig::default())
//!     .match_throughput(&pipeline, &pkg);
//! let report = simulate(&outcome.schedule, &pkg, &model, &SimConfig::saturated(20));
//! // The DES inter-departure interval reproduces the analytical pipe
//! // latency within a few percent.
//! let rel = (report.steady_interval.as_secs() / outcome.report.pipe.as_secs() - 1.0).abs();
//! assert!(rel < 0.1, "DES {} vs analytic {}", report.steady_interval, outcome.report.pipe);
//! ```

pub mod arrivals;
pub mod engine;
pub mod multi;
pub mod quantiles;
pub mod report;
pub mod trace;

pub use arrivals::{ArrivalSegment, Arrivals};
pub use engine::{
    simulate, simulate_phases, simulate_with_stats, EngineStats, PhaseReport, Readiness, SimConfig,
    SimPhase,
};
pub use multi::{simulate_tenants, TenantStream};
pub use quantiles::Quantiles;
pub use report::{LatencyQuantiles, SimReport};
pub use trace::TraceError;
