//! Simulation statistics.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use npu_mcm::ChipletId;
use npu_tensor::{float, Seconds};

use crate::quantiles::Quantiles;

#[cfg(test)]
use crate::engine::SimConfig;

/// Tail-latency percentiles of the steady-state frame latency stream:
/// the serving-style summary (p50/p95/p99/p99.9) that a mean/max pair
/// hides. Computed over the **same trimmed window** as
/// [`SimReport::mean_latency`] — warmup fill and cool-down drain frames
/// never leak into the tails.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencyQuantiles {
    /// Median frame latency.
    pub p50: Seconds,
    /// 95th-percentile frame latency.
    pub p95: Seconds,
    /// 99th-percentile frame latency.
    pub p99: Seconds,
    /// 99.9th-percentile frame latency (`p999` in JSON).
    pub p999: Seconds,
}

impl LatencyQuantiles {
    /// All-zero tails: the empty-run value.
    pub const ZERO: LatencyQuantiles = LatencyQuantiles {
        p50: Seconds::ZERO,
        p95: Seconds::ZERO,
        p99: Seconds::ZERO,
        p999: Seconds::ZERO,
    };

    /// Reads the four standard percentiles out of a streamed sketch
    /// (zeros for an empty sketch).
    pub fn from_stream(q: &Quantiles) -> LatencyQuantiles {
        let at = |phi: f64| Seconds::new(q.quantile(phi).unwrap_or(0.0));
        LatencyQuantiles {
            p50: at(0.50),
            p95: at(0.95),
            p99: at(0.99),
            p999: at(0.999),
        }
    }
}

/// Measured behaviour of a simulated pipeline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimReport {
    /// Mean inter-departure interval of frames in steady state (the
    /// empirical pipelining latency).
    pub steady_interval: Seconds,
    /// Mean per-frame latency (arrival → completion) in steady state.
    pub mean_latency: Seconds,
    /// Worst per-frame latency observed.
    pub max_latency: Seconds,
    /// Tail percentiles of the steady-state latency stream (same
    /// trimmed window as `mean_latency`/`max_latency`).
    pub tails: LatencyQuantiles,
    /// Sustained throughput in frames/second.
    pub throughput_fps: f64,
    /// Frames measured: the steady-state window left after trimming
    /// `warmup` frames from each end of the run.
    pub measured_frames: usize,
    /// Per-chiplet busy fraction over the whole run.
    busy: BTreeMap<ChipletId, f64>,
}

impl SimReport {
    /// Builds the report from raw per-frame arrival/completion times and
    /// per-chiplet busy totals, trimming `warmup` frames from each end of
    /// the run for the steady-state statistics.
    ///
    /// A thin wrapper over the streaming [`ReportBuilder`] — the engine
    /// feeds the builder frame by frame without ever materializing these
    /// slices; tests that hold per-frame vectors go through here so both
    /// paths share one implementation.
    #[cfg(test)]
    pub(crate) fn from_run(
        arrivals: &[f64],
        completions: &[f64],
        busy_time: &BTreeMap<ChipletId, f64>,
        warmup: usize,
    ) -> SimReport {
        let mut b = ReportBuilder::new(completions.len(), warmup, None);
        for (frame, (&a, &c)) in arrivals.iter().zip(completions).enumerate() {
            b.record(frame, a, c);
        }
        b.finish(busy_time)
    }

    /// Busy fraction of a chiplet over the run, if it hosted any work.
    pub fn busy_fraction(&self, chiplet: ChipletId) -> Option<f64> {
        self.busy.get(&chiplet).copied()
    }

    /// The busiest chiplet and its busy fraction.
    pub fn bottleneck(&self) -> Option<(ChipletId, f64)> {
        float::total_max_by_key(self.busy.iter(), |&(_, &b)| b).map(|(&c, &b)| (c, b))
    }
}

/// Streaming accumulator behind [`SimReport`]: the engine calls
/// [`record`](ReportBuilder::record) once per frame **in frame order** as
/// completions commit, so no per-frame arrival/completion vectors ever
/// materialize — O(1) state per run regardless of frame count.
///
/// The frame count is known up front (one frame per arrival timestamp),
/// so the symmetric warmup trim reduces to fixed index bounds `[lo, hi)`:
/// frames outside the window only feed the whole-run extremes (first
/// arrival, last completion) that the busy-fraction span needs; frames
/// inside additionally stream into the latency sum/max and the
/// [`Quantiles`] sketch in the same order the materialized path used,
/// keeping every statistic bit-identical.
///
/// A phase handing over through a **full-barrier** transition passes a
/// `cutoff`: frames whose completion lands past it were still in flight
/// when the incoming mapping quiesced the package. They never complete —
/// the builder counts them as *flushed* and keeps them out of every
/// latency/interval statistic (and out of the span, which ends at the
/// cutoff). With `cutoff = None` every statistic is bit-identical to the
/// pre-flush-accounting builder.
pub(crate) struct ReportBuilder {
    /// Total frames the run will record.
    n: usize,
    /// First frame inside the trimmed steady-state window.
    lo: usize,
    /// One past the last frame inside the window.
    hi: usize,
    /// Frames recorded so far (records must arrive in frame order).
    recorded: usize,
    /// Boundary instant past which in-flight frames are flushed.
    cutoff: Option<f64>,
    /// Frames flushed at the boundary (completion past `cutoff`).
    flushed: usize,
    /// Windowed frames that actually fed the statistics (flushed frames
    /// inside `[lo, hi)` are excluded).
    win_count: usize,
    /// Arrival time of frame 0: the start of the observed span.
    first_arrival: f64,
    /// Running max over **all** completions: the end of the span.
    max_completion: f64,
    /// Running latency sum over the window, in frame order.
    sum_latency: f64,
    /// Running latency max over the window.
    max_latency: f64,
    /// Streaming percentile sketch over the window.
    sketch: Quantiles,
    /// Completion of the first counted windowed frame (window interval
    /// numerator start).
    win_first: f64,
    /// Completion of the latest counted windowed frame.
    win_last: f64,
    /// Latency of the first counted windowed frame: the one-frame-window
    /// interval fallback.
    fallback_latency: f64,
}

impl ReportBuilder {
    /// A builder for an `n`-frame run with a symmetric `warmup` trim
    /// (clamped so the window keeps at least one frame). Frames whose
    /// completion lands past `cutoff` are flushed, not measured.
    pub(crate) fn new(n: usize, warmup: usize, cutoff: Option<f64>) -> ReportBuilder {
        // Symmetric trim: `warmup` frames of pipeline fill at the head
        // AND `warmup` frames of drain at the tail (cool-down frames
        // finish faster than steady state once upstream pressure stops,
        // and would bias the interval low). Clamped so the steady-state
        // window always keeps at least one frame.
        let trim = warmup.min(n.saturating_sub(1) / 2);
        ReportBuilder {
            n,
            lo: trim,
            hi: n - trim,
            recorded: 0,
            cutoff,
            flushed: 0,
            win_count: 0,
            first_arrival: 0.0,
            max_completion: 0.0,
            sum_latency: 0.0,
            max_latency: 0.0,
            sketch: Quantiles::new(),
            win_first: 0.0,
            win_last: 0.0,
            fallback_latency: 0.0,
        }
    }

    /// Frames flushed so far at the phase boundary.
    pub(crate) fn flushed(&self) -> usize {
        self.flushed
    }

    /// Streams one frame's (arrival, completion) pair. Frames must be
    /// recorded in frame order — the engine's commit ring guarantees it
    /// even though frames *complete* out of order.
    pub(crate) fn record(&mut self, frame: usize, arrival: f64, completion: f64) {
        debug_assert_eq!(frame, self.recorded, "frames must stream in order");
        if frame == 0 {
            self.first_arrival = arrival;
        }
        self.recorded += 1;
        if let Some(cutoff) = self.cutoff {
            if completion > cutoff {
                // Still in flight when the incoming mapping quiesced the
                // package: the frame never completes. It holds the span
                // open only to the cutoff instant and feeds no latency
                // or interval statistic.
                self.flushed += 1;
                self.max_completion = f64::max(self.max_completion, cutoff);
                return;
            }
        }
        self.max_completion = f64::max(self.max_completion, completion);
        if frame >= self.lo && frame < self.hi {
            let latency = completion - arrival;
            if self.win_count == 0 {
                self.win_first = completion;
                self.fallback_latency = latency;
            }
            self.win_count += 1;
            self.win_last = completion;
            self.sum_latency += latency;
            self.max_latency = f64::max(self.max_latency, latency);
            self.sketch.insert(latency);
        }
    }

    /// Finalizes the report. `busy_time` maps each chiplet to its total
    /// busy seconds; fractions divide by the run's **observed span**
    /// (first arrival → last completion), so a run offset on an absolute
    /// clock — a late drive phase — reports the same utilization as the
    /// identical run starting at t = 0.
    pub(crate) fn finish(self, busy_time: &BTreeMap<ChipletId, f64>) -> SimReport {
        // A zero-frame run measures nothing; report zeros.
        if self.n == 0 {
            return SimReport {
                steady_interval: Seconds::ZERO,
                mean_latency: Seconds::ZERO,
                max_latency: Seconds::ZERO,
                tails: LatencyQuantiles::ZERO,
                throughput_fps: 0.0,
                measured_frames: 0,
                busy: busy_time.keys().map(|&c| (c, 0.0)).collect(),
            };
        }
        debug_assert_eq!(self.recorded, self.n, "every frame must be recorded");
        // Flushed frames inside [lo, hi) shrink the measured window; with
        // no cutoff, win_count == hi - lo and everything below is
        // bit-identical to the fixed-window math.
        let window_len = self.win_count;

        let steady_interval = if window_len >= 2 {
            Seconds::new((self.win_last - self.win_first) / (window_len - 1) as f64)
        } else {
            // One-frame window: fall back to that frame's service time
            // (zero when the boundary flushed the whole window).
            Seconds::new(self.fallback_latency)
        };

        let mean_latency = Seconds::new(self.sum_latency / window_len.max(1) as f64);
        let tails = LatencyQuantiles::from_stream(&self.sketch);

        let span = self.max_completion - self.first_arrival;
        let busy = busy_time
            .iter()
            .map(|(&c, &b)| (c, if span > 0.0 { b / span } else { 0.0 }))
            .collect();

        SimReport {
            steady_interval,
            mean_latency,
            max_latency: Seconds::new(self.max_latency),
            tails,
            throughput_fps: if steady_interval.is_zero() {
                0.0
            } else {
                1.0 / steady_interval.as_secs()
            },
            measured_frames: window_len,
            busy,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_math() {
        let arrivals = vec![0.0, 0.0, 0.0, 0.0];
        let completions = vec![1.0, 2.0, 3.0, 4.0];
        let mut busy = BTreeMap::new();
        busy.insert(ChipletId(0), 4.0);
        // warmup = 4/4 = 1, trimmed from each end: window [2.0, 3.0].
        let warmup = SimConfig::saturated(4).warmup;
        let r = SimReport::from_run(&arrivals, &completions, &busy, warmup);
        assert_eq!(r.measured_frames, 2);
        assert!((r.steady_interval.as_secs() - 1.0).abs() < 1e-12);
        assert!((r.busy_fraction(ChipletId(0)).unwrap() - 1.0).abs() < 1e-12);

        let r = SimReport::from_run(&arrivals, &completions, &busy, 1);
        assert!((r.steady_interval.as_secs() - 1.0).abs() < 1e-12);
        // Latencies come from the same trimmed window: frames 1 and 2.
        assert!((r.mean_latency.as_secs() - 2.5).abs() < 1e-12);
        assert!((r.max_latency.as_secs() - 3.0).abs() < 1e-12);
        assert_eq!(r.bottleneck().unwrap().0, ChipletId(0));
    }

    #[test]
    fn boundary_flush_excludes_frames_from_every_statistic() {
        let arrivals = [0.0, 0.0, 0.0, 0.0];
        let completions = [1.0, 2.0, 3.0, 4.0];
        let busy = BTreeMap::new();
        // Cutoff at 2.5: frames 2 and 3 were in flight at the boundary.
        let mut b = ReportBuilder::new(4, 0, Some(2.5));
        for (i, (&a, &c)) in arrivals.iter().zip(&completions).enumerate() {
            b.record(i, a, c);
        }
        assert_eq!(b.flushed(), 2);
        let r = b.finish(&busy);
        // Only the two completed frames feed the window.
        assert_eq!(r.measured_frames, 2);
        assert!((r.steady_interval.as_secs() - 1.0).abs() < 1e-12);
        assert!(
            (r.max_latency.as_secs() - 2.0).abs() < 1e-12,
            "3.0/4.0 flushed"
        );
        assert!((r.mean_latency.as_secs() - 1.5).abs() < 1e-12);

        // With no cutoff the builder is bit-identical to the from_run
        // path (the pre-flush-accounting behaviour).
        let mut b = ReportBuilder::new(4, 0, None);
        for (i, (&a, &c)) in arrivals.iter().zip(&completions).enumerate() {
            b.record(i, a, c);
        }
        assert_eq!(b.flushed(), 0);
        assert_eq!(
            b.finish(&busy),
            SimReport::from_run(&arrivals, &completions, &busy, 0)
        );
    }

    #[test]
    fn cooldown_tail_is_trimmed() {
        // Steady completions every 1 s, then a straggler cool-down frame
        // at t = 9: with a 1-frame trim at each end neither the t = 1
        // fill frame nor the t = 9 drain frame pollutes the stats.
        let arrivals = vec![0.0; 5];
        let completions = vec![1.0, 2.0, 3.0, 4.0, 9.0];
        let busy = BTreeMap::new();
        let r = SimReport::from_run(&arrivals, &completions, &busy, 1);
        assert_eq!(r.measured_frames, 3);
        assert!((r.steady_interval.as_secs() - 1.0).abs() < 1e-12);
        assert!((r.max_latency.as_secs() - 4.0).abs() < 1e-12, "9.0 trimmed");
        assert!((r.mean_latency.as_secs() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn latency_stats_share_the_steady_window() {
        let arrivals = vec![0.0, 0.0, 0.0, 0.0, 0.0, 0.0];
        let completions = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let busy = BTreeMap::new();
        let r = SimReport::from_run(&arrivals, &completions, &busy, 2);
        // Window = frames 2..4 (completions 3.0, 4.0): two frames.
        assert_eq!(r.measured_frames, 2);
        assert!((r.mean_latency.as_secs() - 3.5).abs() < 1e-12);
        assert!((r.max_latency.as_secs() - 4.0).abs() < 1e-12);
    }

    /// Regression (ISSUE 6): tails must accumulate over the **trimmed**
    /// window. If warmup frames leaked into the percentile stream, the
    /// huge fill-frame latency below would dominate every upper tail.
    #[test]
    fn warmup_frames_do_not_leak_into_tails() {
        // Frame 0 is a pathological fill frame (latency 50 s); frames
        // 1..=4 are steady at 1 s; frame 5 is a slow drain (latency 9 s).
        let arrivals = vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0];
        let completions = vec![50.0, 2.0, 3.0, 4.0, 5.0, 14.0];
        let busy = BTreeMap::new();
        let r = SimReport::from_run(&arrivals, &completions, &busy, 1);
        assert_eq!(r.measured_frames, 4);
        // Every percentile of the 4-frame steady window is exactly 1 s:
        // neither the 50 s fill nor the 9 s drain frame may appear.
        for (what, v) in [
            ("p50", r.tails.p50),
            ("p95", r.tails.p95),
            ("p99", r.tails.p99),
            ("p99.9", r.tails.p999),
        ] {
            assert!(
                (v.as_secs() - 1.0).abs() < 1e-12,
                "{what} polluted by warmup/drain: {v}"
            );
        }
        // And the tails agree with max over the same window.
        assert_eq!(
            r.tails.p999.as_secs().to_bits(),
            r.max_latency.as_secs().to_bits()
        );
    }

    /// The steady windows in the artifacts are far below the sketch's
    /// exact capacity, so the report percentiles are exact nearest-rank
    /// order statistics of the trimmed latency stream.
    #[test]
    fn tails_are_exact_order_statistics_of_the_window() {
        let n = 40;
        let arrivals: Vec<f64> = (0..n).map(|i| i as f64).collect();
        // Latency of frame i is a scrambled value in [1, 40].
        let completions: Vec<f64> = (0..n)
            .map(|i| i as f64 + ((i * 17) % n + 1) as f64)
            .collect();
        let busy = BTreeMap::new();
        let warmup = 5;
        let r = SimReport::from_run(&arrivals, &completions, &busy, warmup);
        let mut window: Vec<f64> = (warmup..n - warmup)
            .map(|i| completions[i] - arrivals[i])
            .collect();
        window.sort_unstable_by(f64::total_cmp);
        for (phi, v) in [
            (0.50, r.tails.p50),
            (0.95, r.tails.p95),
            (0.99, r.tails.p99),
            (0.999, r.tails.p999),
        ] {
            assert_eq!(
                v.as_secs().to_bits(),
                Quantiles::exact_sorted(&window, phi).to_bits(),
                "{phi}"
            );
        }
        assert!(r.tails.p50 <= r.tails.p95);
        assert!(r.tails.p95 <= r.tails.p99);
        assert!(r.tails.p99 <= r.tails.p999);
        assert!(r.tails.p999 <= r.max_latency);
    }

    #[test]
    fn zero_frame_run_reports_zeros() {
        let mut busy = BTreeMap::new();
        busy.insert(ChipletId(3), 0.0);
        let r = SimReport::from_run(&[], &[], &busy, SimConfig::saturated(0).warmup);
        assert_eq!(r.measured_frames, 0);
        assert!(r.steady_interval.is_zero());
        assert_eq!(r.tails, LatencyQuantiles::ZERO);
        assert_eq!(r.throughput_fps, 0.0);
        assert_eq!(r.busy_fraction(ChipletId(3)), Some(0.0));
    }

    #[test]
    fn tiny_runs_keep_a_nonempty_window() {
        let busy = BTreeMap::new();
        // One frame, huge warmup: the clamp keeps that frame and falls
        // back to its service time for the interval.
        let r = SimReport::from_run(&[0.5], &[2.0], &busy, 4);
        assert_eq!(r.measured_frames, 1);
        assert!((r.steady_interval.as_secs() - 1.5).abs() < 1e-12);
        assert!((r.mean_latency.as_secs() - 1.5).abs() < 1e-12);

        // Three frames, warmup 4: trim clamps to (3-1)/2 = 1 per end.
        let r = SimReport::from_run(&[0.0, 0.0, 0.0], &[1.0, 2.0, 3.0], &busy, 4);
        assert_eq!(r.measured_frames, 1);
        // One-frame window: interval falls back to frame 1's latency.
        assert!((r.steady_interval.as_secs() - 2.0).abs() < 1e-12);
    }
}
