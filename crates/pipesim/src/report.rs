//! Simulation statistics.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use npu_mcm::ChipletId;
use npu_tensor::Seconds;

use crate::engine::SimConfig;

/// Measured behaviour of a simulated pipeline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimReport {
    /// Mean inter-departure interval of frames in steady state (the
    /// empirical pipelining latency).
    pub steady_interval: Seconds,
    /// Mean per-frame latency (arrival → completion) in steady state.
    pub mean_latency: Seconds,
    /// Worst per-frame latency observed.
    pub max_latency: Seconds,
    /// Sustained throughput in frames/second.
    pub throughput_fps: f64,
    /// Frames measured (after warm-up trimming).
    pub measured_frames: usize,
    /// Per-chiplet busy fraction over the whole run.
    busy: BTreeMap<ChipletId, f64>,
}

impl SimReport {
    /// Builds the report from raw per-frame arrival/completion times and
    /// per-chiplet busy totals.
    pub(crate) fn from_run(
        arrivals: &[f64],
        completions: &[f64],
        busy_time: &BTreeMap<ChipletId, f64>,
        cfg: &SimConfig,
    ) -> SimReport {
        let n = completions.len();
        let lo = cfg.warmup.min(n.saturating_sub(1));
        let hi = n.saturating_sub(1);
        let window = &completions[lo..=hi.max(lo)];

        let steady_interval = if window.len() >= 2 {
            Seconds::new((window[window.len() - 1] - window[0]) / (window.len() - 1) as f64)
        } else {
            Seconds::new(completions[0] - arrivals[0])
        };

        let latencies: Vec<f64> = (lo..n).map(|i| completions[i] - arrivals[i]).collect();
        let mean_latency =
            Seconds::new(latencies.iter().sum::<f64>() / latencies.len().max(1) as f64);
        let max_latency = Seconds::new(latencies.iter().copied().fold(0.0, f64::max));

        let makespan = completions.iter().copied().fold(0.0, f64::max);
        let busy = busy_time
            .iter()
            .map(|(&c, &b)| (c, if makespan > 0.0 { b / makespan } else { 0.0 }))
            .collect();

        SimReport {
            steady_interval,
            mean_latency,
            max_latency,
            throughput_fps: if steady_interval.is_zero() {
                0.0
            } else {
                1.0 / steady_interval.as_secs()
            },
            measured_frames: window.len(),
            busy,
        }
    }

    /// Busy fraction of a chiplet over the run, if it hosted any work.
    pub fn busy_fraction(&self, chiplet: ChipletId) -> Option<f64> {
        self.busy.get(&chiplet).copied()
    }

    /// The busiest chiplet and its busy fraction.
    pub fn bottleneck(&self) -> Option<(ChipletId, f64)> {
        self.busy
            .iter()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
            .map(|(&c, &b)| (c, b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_math() {
        let arrivals = vec![0.0, 0.0, 0.0, 0.0];
        let completions = vec![1.0, 2.0, 3.0, 4.0];
        let mut busy = BTreeMap::new();
        busy.insert(ChipletId(0), 4.0);
        let cfg = SimConfig::saturated(4);
        // warmup = min(4,4) = 4 -> clamped to n-1 = 3: window of 1.
        let r = SimReport::from_run(&arrivals, &completions, &busy, &cfg);
        assert_eq!(r.measured_frames, 1);
        assert!((r.busy_fraction(ChipletId(0)).unwrap() - 1.0).abs() < 1e-12);

        let cfg = SimConfig {
            warmup: 1,
            ..SimConfig::saturated(4)
        };
        let r = SimReport::from_run(&arrivals, &completions, &busy, &cfg);
        assert!((r.steady_interval.as_secs() - 1.0).abs() < 1e-12);
        assert!((r.max_latency.as_secs() - 4.0).abs() < 1e-12);
        assert_eq!(r.bottleneck().unwrap().0, ChipletId(0));
    }
}
