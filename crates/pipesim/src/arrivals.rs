//! Frame arrival processes.
//!
//! The seed reproduction knew two arrival patterns: saturation (all
//! frames at t = 0) and a fixed-rate camera with optional uniform jitter.
//! Real driving workloads are richer — bursty re-localization phases,
//! recorded sensor timestamp traces — so arrivals are a first-class enum
//! that every scenario (see `npu-scenario`) compiles down to. Every
//! variant expands to a deterministic, finite, non-decreasing timestamp
//! vector via [`Arrivals::times`], which re-validates the variant's
//! parameters on every expansion — so values built directly (or
//! deserialized, bypassing the checked constructors) still cannot smuggle
//! non-finite or out-of-order event times into the simulator.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use npu_tensor::Seconds;

/// How frames enter the simulated pipeline.
///
/// # Examples
///
/// ```
/// use npu_pipesim::Arrivals;
/// use npu_tensor::Seconds;
///
/// let periodic = Arrivals::periodic_fps(0.5);
/// assert_eq!(periodic.times(3), vec![0.0, 2.0, 4.0]);
/// // Bursts of 2 frames 1 s apart, bursts every 8 s.
/// let bursty = Arrivals::Bursty {
///     period: Seconds::new(8.0),
///     burst: 2,
///     intra: Seconds::new(1.0),
/// };
/// assert_eq!(bursty.times(4), vec![0.0, 1.0, 8.0, 9.0]);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Arrivals {
    /// All frames available at t = 0 (saturation mode, used to measure
    /// the sustainable rate).
    Saturated,
    /// Strictly periodic arrivals every `interval`.
    Periodic {
        /// Inter-frame interval.
        interval: Seconds,
    },
    /// Periodic arrivals with uniform per-frame jitter (camera
    /// trigger/exposure skew): frame `i` arrives at
    /// `i·interval + U(0,1)·frac·interval` under a seeded RNG.
    Jittered {
        /// Nominal inter-frame interval.
        interval: Seconds,
        /// Jitter amplitude as a fraction of the interval, in `[0, 1)`.
        frac: f64,
        /// Seed for the jitter stream (deterministic simulations).
        seed: u64,
    },
    /// Frames arrive in bursts (e.g. a re-localization phase dumping a
    /// backlog of keyframes): bursts start every `period`; within a
    /// burst, `burst` frames are spaced `intra` apart.
    Bursty {
        /// Burst start spacing.
        period: Seconds,
        /// Frames per burst.
        burst: usize,
        /// Intra-burst frame spacing.
        intra: Seconds,
    },
    /// Replay of recorded arrival timestamps. When more frames are
    /// simulated than the trace holds, the trace loops: repetition `k`
    /// is shifted by `k` times the trace's estimated cycle (last
    /// timestamp plus the mean recorded gap).
    Trace(Vec<Seconds>),
    /// A time-varying process: an ordered sequence of segments, each with
    /// its own (non-piecewise) inner process, frame count and time span.
    /// Segment `k` starts where segment `k-1`'s span ends, so a drive
    /// that transitions between operating modes (cruise → urban →
    /// degraded) compiles into **one** continuous arrival stream. Like
    /// [`Trace`](Self::Trace), the sequence loops when more frames are
    /// requested than the segments hold, shifted by the total span.
    Piecewise(Vec<ArrivalSegment>),
}

/// One segment of a [`Arrivals::Piecewise`] process.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArrivalSegment {
    /// The arrival process within the segment (must not itself be
    /// piecewise). Its times are relative to the segment start.
    pub arrivals: Arrivals,
    /// Frames drawn from the segment's process.
    pub frames: usize,
    /// Wall-clock time the segment occupies; the next segment starts this
    /// much later. Every frame of the segment must arrive within it.
    pub span: Seconds,
}

impl Arrivals {
    /// Largest jitter fraction accepted: the bound keeps jittered frame
    /// `i` strictly before the nominal slot of frame `i + 1`.
    pub const MAX_JITTER: f64 = 1.0 - 1e-9;

    /// Periodic arrivals at the given frame rate.
    ///
    /// # Panics
    ///
    /// Panics if `fps` is not finite and positive (a zero or NaN rate
    /// would silently produce non-finite event times).
    pub fn periodic_fps(fps: f64) -> Self {
        assert!(
            fps.is_finite() && fps > 0.0,
            "frame rate must be finite and positive, got {fps}"
        );
        Arrivals::Periodic {
            interval: Seconds::new(1.0 / fps),
        }
    }

    /// Validated trace replay: timestamps must be finite, non-negative
    /// and non-decreasing, and the trace non-empty.
    ///
    /// # Panics
    ///
    /// Panics if the trace is empty or any timestamp is negative,
    /// non-finite or out of order.
    pub fn trace(times: Vec<Seconds>) -> Self {
        validate_trace(&times);
        Arrivals::Trace(times)
    }

    /// Validated piecewise process: segments must be non-empty, each with
    /// at least one frame, a finite positive span, a valid non-piecewise
    /// inner process, and every segment's frames arriving within its span
    /// (so the concatenated stream stays non-decreasing at the seams).
    ///
    /// # Panics
    ///
    /// Panics if any of the above is violated.
    pub fn piecewise(segments: Vec<ArrivalSegment>) -> Self {
        let a = Arrivals::Piecewise(segments);
        a.validate();
        a
    }

    /// Clamps a jitter fraction into `[0,` [`MAX_JITTER`](Self::MAX_JITTER)`]`
    /// (NaN and infinities clamp to 0) — the range within which jittered
    /// arrivals stay non-decreasing.
    pub fn clamp_jitter(frac: f64) -> f64 {
        if frac.is_finite() {
            frac.clamp(0.0, Arrivals::MAX_JITTER)
        } else {
            0.0
        }
    }

    /// Checks the variant's parameters uphold the finite, non-decreasing
    /// timestamp guarantee. Called by [`times`](Self::times) on every
    /// expansion, so directly-constructed or deserialized values cannot
    /// bypass the checked constructors.
    ///
    /// # Panics
    ///
    /// Panics on a non-finite or negative interval/period/spacing, an
    /// invalid trace, or a burst whose intra-burst span exceeds its
    /// period (which would interleave bursts out of frame order).
    pub fn validate(&self) {
        let finite_nonneg = |what: &str, s: Seconds| {
            let v = s.as_secs();
            assert!(
                v.is_finite() && v >= 0.0,
                "{what} must be finite and non-negative, got {v}"
            );
        };
        match self {
            Arrivals::Saturated => {}
            Arrivals::Periodic { interval } | Arrivals::Jittered { interval, .. } => {
                finite_nonneg("arrival interval", *interval);
            }
            Arrivals::Bursty {
                period,
                burst,
                intra,
            } => {
                finite_nonneg("burst period", *period);
                finite_nonneg("intra-burst spacing", *intra);
                let span = intra.as_secs() * burst.saturating_sub(1) as f64;
                assert!(
                    span <= period.as_secs(),
                    "a {burst}-frame burst spans {span}s, exceeding its {period} \
                     period: bursts would interleave out of frame order"
                );
            }
            Arrivals::Trace(times) => validate_trace(times),
            Arrivals::Piecewise(segments) => {
                assert!(
                    !segments.is_empty(),
                    "a piecewise process needs at least one segment"
                );
                for (i, seg) in segments.iter().enumerate() {
                    assert!(
                        !matches!(seg.arrivals, Arrivals::Piecewise(_)),
                        "segment {i}: piecewise processes do not nest"
                    );
                    assert!(seg.frames >= 1, "segment {i} must carry at least one frame");
                    let span = seg.span.as_secs();
                    assert!(
                        span.is_finite() && span > 0.0,
                        "segment {i} span must be finite and positive, got {span}"
                    );
                    seg.arrivals.validate();
                    // The seam guarantee: the segment's last frame arrives
                    // strictly within its span, so offsetting the next
                    // segment by `span` keeps the stream non-decreasing.
                    let last = *seg
                        .arrivals
                        .times(seg.frames)
                        .last()
                        .expect("at least one frame");
                    assert!(
                        last < span,
                        "segment {i}: frame at {last}s falls outside the {span}s span, \
                         which would interleave with the next segment"
                    );
                }
            }
        }
    }

    /// Expands the process into one arrival timestamp per frame.
    /// Deterministic: the same variant (and seed) always yields the same
    /// vector, so simulations are reproducible.
    ///
    /// # Panics
    ///
    /// Panics if the variant's parameters are invalid (see
    /// [`validate`](Self::validate)), or if a trace with a zero replay
    /// cycle (a recording ending at t = 0) would have to loop to reach
    /// `frames`.
    pub fn times(&self, frames: usize) -> Vec<f64> {
        self.validate();
        match self {
            Arrivals::Saturated => vec![0.0; frames],
            Arrivals::Periodic { interval } => {
                let iv = interval.as_secs();
                (0..frames).map(|f| iv * f as f64).collect()
            }
            Arrivals::Jittered {
                interval,
                frac,
                seed,
            } => {
                let iv = interval.as_secs();
                let frac = Arrivals::clamp_jitter(*frac);
                let mut rng = StdRng::seed_from_u64(*seed);
                (0..frames)
                    .map(|f| {
                        let jitter = if frac > 0.0 {
                            iv * frac * rng.gen_range(0.0..1.0)
                        } else {
                            0.0
                        };
                        iv * f as f64 + jitter
                    })
                    .collect()
            }
            Arrivals::Bursty {
                period,
                burst,
                intra,
            } => {
                let burst = (*burst).max(1);
                (0..frames)
                    .map(|f| {
                        (f / burst) as f64 * period.as_secs() + (f % burst) as f64 * intra.as_secs()
                    })
                    .collect()
            }
            Arrivals::Trace(trace) => {
                let cycle = trace_cycle(trace);
                // A trace whose recording ends at t = 0 (every timestamp
                // zero) has a zero replay cycle: looping it would stamp
                // every extra frame at t = 0 — silent saturation, not a
                // replay. Reject instead of time-travelling in place.
                assert!(
                    frames <= trace.len() || cycle > 0.0,
                    "a {}-frame trace ending at t = 0 has a zero replay cycle \
                     and cannot loop to {frames} frames",
                    trace.len()
                );
                (0..frames)
                    .map(|f| trace[f % trace.len()].as_secs() + (f / trace.len()) as f64 * cycle)
                    .collect()
            }
            Arrivals::Piecewise(segments) => {
                // One full pass over the segments: each inner process is
                // expanded at its own offset; the offsets accumulate the
                // spans, so the stream is continuous across segments.
                let mut base = Vec::with_capacity(segments.iter().map(|s| s.frames).sum());
                let mut offset = 0.0;
                for seg in segments {
                    base.extend(seg.arrivals.times(seg.frames).iter().map(|t| offset + t));
                    offset += seg.span.as_secs();
                }
                // Like a trace, the whole timeline loops (shifted by the
                // total span) when more frames are requested than the
                // segments hold.
                let cycle = offset;
                (0..frames)
                    .map(|f| base[f % base.len()] + (f / base.len()) as f64 * cycle)
                    .collect()
            }
        }
    }

    /// Total frames one full pass of the process carries: the segment sum
    /// for piecewise processes, the trace length for traces, `None` for
    /// the unbounded synthetic processes. Simulating exactly this many
    /// frames replays the timeline once without looping.
    pub fn frames_per_cycle(&self) -> Option<usize> {
        match self {
            Arrivals::Piecewise(segments) => Some(segments.iter().map(|s| s.frames).sum()),
            Arrivals::Trace(trace) => Some(trace.len()),
            _ => None,
        }
    }

    /// Mean inter-arrival interval of the process, or `None` for
    /// saturation (all frames at t = 0). The analytic steady-state
    /// prediction of a simulated run is `max(pipe, mean_interval)`:
    /// compute-bound when arrivals outpace the pipeline, arrival-bound
    /// otherwise.
    pub fn mean_interval(&self) -> Option<Seconds> {
        match self {
            Arrivals::Saturated => None,
            // Jitter shifts arrivals within their slot; the mean spacing
            // stays the nominal interval.
            Arrivals::Periodic { interval } | Arrivals::Jittered { interval, .. } => {
                Some(*interval)
            }
            Arrivals::Bursty { period, burst, .. } => {
                Some(Seconds::new(period.as_secs() / (*burst).max(1) as f64))
            }
            Arrivals::Trace(trace) => Some(Seconds::new(trace_cycle(trace) / trace.len() as f64)),
            Arrivals::Piecewise(segments) => {
                let span: f64 = segments.iter().map(|s| s.span.as_secs()).sum();
                let frames: usize = segments.iter().map(|s| s.frames).sum();
                Some(Seconds::new(span / frames.max(1) as f64))
            }
        }
    }
}

/// Panics unless the trace is non-empty with finite, non-negative,
/// non-decreasing timestamps (shared by [`Arrivals::trace`] and
/// [`Arrivals::validate`]).
fn validate_trace(times: &[Seconds]) {
    assert!(
        !times.is_empty(),
        "an arrival trace needs at least one timestamp"
    );
    let mut prev = 0.0;
    for (i, t) in times.iter().enumerate() {
        let t = t.as_secs();
        assert!(
            t.is_finite() && t >= prev,
            "trace timestamp {i} ({t}) must be finite and non-decreasing"
        );
        prev = t;
    }
}

/// Estimated replay cycle of a trace: the last timestamp plus one mean
/// recorded gap (a single-entry trace repeats at its own timestamp).
fn trace_cycle(trace: &[Seconds]) -> f64 {
    let last = trace.last().expect("validated non-empty").as_secs();
    if trace.len() >= 2 {
        let span = last - trace[0].as_secs();
        last + span / (trace.len() - 1) as f64
    } else {
        last
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn saturated_is_all_zero() {
        assert_eq!(Arrivals::Saturated.times(3), vec![0.0; 3]);
        assert_eq!(Arrivals::Saturated.mean_interval(), None);
    }

    #[test]
    fn periodic_fps_spaces_frames() {
        let a = Arrivals::periodic_fps(20.0);
        assert_eq!(a.times(3), vec![0.0, 0.05, 0.1]);
        assert_eq!(a.mean_interval(), Some(Seconds::new(0.05)));
    }

    #[test]
    #[should_panic(expected = "finite and positive")]
    fn zero_fps_is_rejected() {
        let _ = Arrivals::periodic_fps(0.0);
    }

    #[test]
    #[should_panic(expected = "finite and positive")]
    fn nan_fps_is_rejected() {
        let _ = Arrivals::periodic_fps(f64::NAN);
    }

    #[test]
    fn jitter_is_seeded_and_bounded() {
        let a = Arrivals::Jittered {
            interval: Seconds::new(0.1),
            frac: 0.5,
            seed: 7,
        };
        let t1 = a.times(16);
        let t2 = a.times(16);
        assert_eq!(t1, t2, "same seed, same times");
        for (f, t) in t1.iter().enumerate() {
            let nominal = 0.1 * f as f64;
            assert!(*t >= nominal && *t < nominal + 0.05, "frame {f}: {t}");
        }
    }

    #[test]
    fn bursts_cluster_frames() {
        let a = Arrivals::Bursty {
            period: Seconds::new(1.0),
            burst: 3,
            intra: Seconds::new(0.01),
        };
        assert_eq!(a.times(5), vec![0.0, 0.01, 0.02, 1.0, 1.01]);
        // Mean rate: 3 frames per second.
        let iv = a.mean_interval().unwrap().as_secs();
        assert!((iv - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn trace_replays_and_loops() {
        let a = Arrivals::trace(vec![
            Seconds::new(0.0),
            Seconds::new(0.1),
            Seconds::new(0.4),
        ]);
        let t = a.times(5);
        assert_eq!(&t[..3], &[0.0, 0.1, 0.4]);
        // Cycle = 0.4 + mean gap 0.2 = 0.6: the second repetition shifts
        // by 0.6.
        assert!((t[3] - 0.6).abs() < 1e-12, "{t:?}");
        assert!((t[4] - 0.7).abs() < 1e-12, "{t:?}");
        assert!((a.mean_interval().unwrap().as_secs() - 0.2).abs() < 1e-12);
    }

    /// Regression (ISSUE 8): a trace whose recording ends at t = 0 has a
    /// zero replay cycle. The old expansion silently looped it in place —
    /// every extra frame at t = 0, a saturation run masquerading as a
    /// replay. It must refuse to loop instead.
    #[test]
    #[should_panic(expected = "cannot loop")]
    fn zero_cycle_trace_refuses_to_loop() {
        let a = Arrivals::trace(vec![Seconds::new(0.0)]);
        let _ = a.times(3);
    }

    /// The zero-cycle guard only fires when looping is actually needed:
    /// replaying a t = 0 recording once per frame is fine.
    #[test]
    fn zero_cycle_trace_replays_without_looping() {
        let a = Arrivals::trace(vec![Seconds::new(0.0), Seconds::new(0.0)]);
        assert_eq!(a.times(2), vec![0.0, 0.0]);
        assert_eq!(a.times(1), vec![0.0]);
    }

    /// A single-entry trace loops at its own timestamp: frame f arrives
    /// at `t0 * (f + 1)`.
    #[test]
    fn single_entry_trace_loops_at_its_timestamp() {
        let a = Arrivals::trace(vec![Seconds::new(2.0)]);
        assert_eq!(a.times(3), vec![2.0, 4.0, 6.0]);
        assert_eq!(a.mean_interval(), Some(Seconds::new(2.0)));
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn unsorted_trace_is_rejected() {
        let _ = Arrivals::trace(vec![Seconds::new(1.0), Seconds::new(0.5)]);
    }

    /// Values that bypass the checked constructors (direct construction
    /// or serde) are still caught when expanded.
    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn unsorted_trace_is_caught_at_expansion() {
        let a = Arrivals::Trace(vec![Seconds::new(1.0), Seconds::new(0.5)]);
        let _ = a.times(4);
    }

    /// A burst whose frames span longer than its period would interleave
    /// with the next burst, breaking frame-order arrivals: rejected.
    #[test]
    #[should_panic(expected = "interleave")]
    fn overlapping_bursts_are_rejected() {
        let a = Arrivals::Bursty {
            period: Seconds::new(1.0),
            burst: 4,
            intra: Seconds::new(0.5),
        };
        let _ = a.times(8);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn non_finite_interval_is_caught_at_expansion() {
        let a = Arrivals::Periodic {
            interval: Seconds::new(f64::NAN),
        };
        let _ = a.times(4);
    }

    /// A directly-constructed out-of-range jitter fraction clamps at
    /// expansion, exactly as `SimConfig::with_jitter` clamps on entry.
    #[test]
    fn oversized_jitter_clamps_at_expansion() {
        let a = Arrivals::Jittered {
            interval: Seconds::new(0.1),
            frac: 5.0,
            seed: 3,
        };
        let t = a.times(16);
        for (f, t) in t.iter().enumerate() {
            let nominal = 0.1 * f as f64;
            assert!(*t >= nominal && *t < nominal + 0.1, "frame {f}: {t}");
        }
        for w in t.windows(2) {
            assert!(w[1] >= w[0], "non-decreasing even at max jitter");
        }
    }

    #[test]
    #[should_panic(expected = "at least one timestamp")]
    fn empty_trace_is_rejected() {
        let _ = Arrivals::trace(Vec::new());
    }

    #[test]
    fn piecewise_concatenates_segments_at_their_offsets() {
        // 3 frames at 10 FPS over 0.3 s, then 2 frames at 2 FPS over 1 s.
        let a = Arrivals::piecewise(vec![
            ArrivalSegment {
                arrivals: Arrivals::periodic_fps(10.0),
                frames: 3,
                span: Seconds::new(0.3),
            },
            ArrivalSegment {
                arrivals: Arrivals::periodic_fps(2.0),
                frames: 2,
                span: Seconds::new(1.0),
            },
        ]);
        assert_eq!(a.frames_per_cycle(), Some(5));
        let t = a.times(5);
        assert_eq!(t, vec![0.0, 0.1, 0.2, 0.3, 0.8]);
        // Mean interval = total span / total frames = 1.3 / 5.
        assert!((a.mean_interval().unwrap().as_secs() - 0.26).abs() < 1e-12);
        // Requesting more frames loops the timeline, shifted by 1.3 s.
        let looped = a.times(7);
        assert!((looped[5] - 1.3).abs() < 1e-12, "{looped:?}");
        assert!((looped[6] - 1.4).abs() < 1e-12, "{looped:?}");
        // Requesting fewer truncates.
        assert_eq!(a.times(2), vec![0.0, 0.1]);
    }

    #[test]
    #[should_panic(expected = "outside the")]
    fn piecewise_rejects_frames_spilling_past_the_span() {
        // 5 frames at 10 FPS span 0.4 s > the declared 0.3 s.
        let _ = Arrivals::piecewise(vec![ArrivalSegment {
            arrivals: Arrivals::periodic_fps(10.0),
            frames: 5,
            span: Seconds::new(0.3),
        }]);
    }

    #[test]
    #[should_panic(expected = "do not nest")]
    fn piecewise_rejects_nesting() {
        let inner = Arrivals::piecewise(vec![ArrivalSegment {
            arrivals: Arrivals::periodic_fps(10.0),
            frames: 1,
            span: Seconds::new(0.2),
        }]);
        let _ = Arrivals::piecewise(vec![ArrivalSegment {
            arrivals: inner,
            frames: 1,
            span: Seconds::new(0.2),
        }]);
    }

    #[test]
    #[should_panic(expected = "at least one segment")]
    fn empty_piecewise_is_rejected() {
        let _ = Arrivals::piecewise(Vec::new());
    }

    /// Directly-constructed piecewise values (or serde round trips) are
    /// still validated on expansion, like every other variant.
    #[test]
    #[should_panic(expected = "finite and positive")]
    fn invalid_piecewise_is_caught_at_expansion() {
        let a = Arrivals::Piecewise(vec![ArrivalSegment {
            arrivals: Arrivals::Saturated,
            frames: 2,
            span: Seconds::new(f64::NAN),
        }]);
        let _ = a.times(2);
    }

    /// A zero-segment timeline asked for frames would index into an
    /// empty expansion (`base[f % 0]`): caught at expansion, not as a
    /// modulo-by-zero panic deep in the loop arithmetic.
    #[test]
    #[should_panic(expected = "at least one segment")]
    fn empty_piecewise_is_caught_at_expansion() {
        let a = Arrivals::Piecewise(Vec::new());
        let _ = a.times(3);
    }

    /// A zero-span segment contributes nothing to the loop cycle, so
    /// looping the timeline would replay it at the same instant forever:
    /// rejected by the span validation.
    #[test]
    #[should_panic(expected = "finite and positive")]
    fn zero_span_segment_is_caught_at_expansion() {
        let a = Arrivals::Piecewise(vec![ArrivalSegment {
            arrivals: Arrivals::Saturated,
            frames: 2,
            span: Seconds::ZERO,
        }]);
        let _ = a.times(2);
    }

    /// A zero-frame segment has no last arrival to check against its
    /// span: rejected before the seam check dereferences it.
    #[test]
    #[should_panic(expected = "at least one frame")]
    fn zero_frame_segment_is_caught_at_expansion() {
        let a = Arrivals::Piecewise(vec![ArrivalSegment {
            arrivals: Arrivals::periodic_fps(30.0),
            frames: 0,
            span: Seconds::new(1.0),
        }]);
        let _ = a.times(2);
    }

    #[test]
    fn times_are_non_decreasing_across_variants() {
        let variants = [
            Arrivals::Saturated,
            Arrivals::periodic_fps(30.0),
            Arrivals::Jittered {
                interval: Seconds::new(0.033),
                frac: 0.9,
                seed: 3,
            },
            Arrivals::Bursty {
                period: Seconds::new(0.2),
                burst: 4,
                intra: Seconds::new(0.002),
            },
            Arrivals::trace(vec![Seconds::new(0.0), Seconds::new(0.03)]),
            Arrivals::piecewise(vec![
                ArrivalSegment {
                    arrivals: Arrivals::periodic_fps(30.0),
                    frames: 6,
                    span: Seconds::new(0.25),
                },
                ArrivalSegment {
                    arrivals: Arrivals::Bursty {
                        period: Seconds::new(0.2),
                        burst: 3,
                        intra: Seconds::new(0.01),
                    },
                    frames: 5,
                    span: Seconds::new(0.5),
                },
            ]),
        ];
        for a in variants {
            let t = a.times(32);
            assert_eq!(t.len(), 32);
            // Jitter below MAX_JITTER keeps each frame within its slot;
            // the other processes are monotone by construction.
            for w in t.windows(2) {
                assert!(w[1] >= w[0] - 0.033, "{a:?}: {w:?}");
            }
            assert!(t.iter().all(|t| t.is_finite()), "{a:?}");
        }
    }
}
