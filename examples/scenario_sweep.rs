//! The scenario workbench: evaluate the built-in driving-scenario
//! families — plus a custom one — on the paper's 6×6 package, and show
//! where the platform is compute-bound vs arrival-bound.
//!
//! Run with: `cargo run --release --example scenario_sweep`

use npu_core::prelude::*;
use npu_maestro::FittedMaestro;

fn main() {
    // The built-in envelope: highway cruise, dense urban, a 6-camera
    // rig, camera dropout, burst re-localization, low-light throttling
    // and a drive-log trace replay.
    let mut scenarios = Scenario::builtin();

    // Defining a scenario is declarative: a camera rig plus an
    // operating mode. Here: a 6-camera rig limping home after losing
    // two cameras.
    scenarios.push(Scenario::new(
        "custom-limp-home",
        CameraRig::new(6, (288, 512), 15.0),
        OperatingMode::DegradedDropout { lost_cameras: 2 },
    ));

    let packages = [McmPackage::simba_6x6()];
    let model = FittedMaestro::new();
    let points = scenario_sweep(&scenarios, &packages, &model, 24);

    println!(
        "{:<22} {:>5} {:>9} {:>9} {:>9} {:>9} {:>6}",
        "scenario", "cams", "pipe[ms]", "pred[ms]", "DES[ms]", "lat[ms]", "bound"
    );
    for p in &points {
        let bound = if p.predicted_interval > p.pipe {
            "arrival"
        } else {
            "compute"
        };
        println!(
            "{:<22} {:>5} {:>9.2} {:>9.2} {:>9.2} {:>9.1} {:>6}",
            p.scenario,
            p.cameras,
            p.pipe.as_millis(),
            p.predicted_interval.as_millis(),
            p.des_interval.as_millis(),
            p.mean_latency.as_millis(),
            bound,
        );
        assert!(
            p.drift < 0.10,
            "{}: DES drifted {:+.1}% from the analytic prediction",
            p.scenario,
            p.drift * 100.0
        );
    }
    println!(
        "\nevery family within 10% of max(analytic pipe, arrival interval): \
         the DES and the analytic model agree across the workload envelope"
    );
}
