//! Quickstart: schedule the Tesla-Autopilot-style perception pipeline on
//! the paper's 6×6 multi-chiplet NPU and print the headline metrics.
//!
//! Run with: `cargo run --release --example quickstart`

use npu_core::prelude::*;

fn main() {
    // The paper's NPU: a Simba-like 6x6 mesh of 256-PE output-stationary
    // chiplets — 9,216 PEs, the Tesla FSD NPU budget, at 2 GHz.
    let platform = Platform::simba_6x6();
    println!("platform : {}", platform.package());

    // The four-stage perception workload: 8 cameras -> FE+BFPN -> spatial
    // fusion -> temporal fusion -> trunks (occupancy / lanes / detectors).
    let pipeline = PerceptionConfig::default().build();
    println!(
        "workload : {} stages, {:.1} GMAC/frame",
        pipeline.stages().len(),
        pipeline.total_macs().as_gmacs()
    );

    // Algorithm 1: nested greedy throughput matching.
    let outcome = platform.schedule_perception(&pipeline);
    println!("\nschedule after throughput matching:");
    print!("{}", outcome.schedule);

    let r = &outcome.report;
    println!("pipelining latency : {}", r.pipe);
    println!("end-to-end latency : {}", r.e2e);
    println!("throughput         : {:.1} FPS", r.throughput_fps());
    println!(
        "energy/frame       : {} (+{} NoP)",
        r.compute_energy, r.nop_energy
    );
    println!("EDP                : {}", r.edp());
    println!("PE utilization     : {:.1}%", r.utilization_used * 100.0);

    for stage in &r.per_stage {
        println!(
            "  {:10} pipe {:>9}  e2e {:>9}  energy {:>10}",
            stage.kind.to_string(),
            stage.pipe.to_string(),
            stage.e2e.to_string(),
            stage.energy().to_string()
        );
    }
}
