//! Heterogeneous trunk integration: brute-force DSE over OS/WS chiplet
//! mixes in the trunks quadrant (the paper's Table I), plus the trunk
//! ablations (Table III occupancy scaling, Fig. 11 context-aware lanes).
//!
//! Run with: `cargo run --release --example hetero_dse`

use npu_core::experiments::{fig11, table1, table3};

fn main() {
    let t1 = table1::run();
    println!("{t1}");

    for v in &t1.variants {
        println!(
            "{:7}: searched {:3} configs, feasible: {}, winning schedule uses {} chiplets",
            v.variant,
            v.configs_searched,
            v.feasible,
            v.schedule.chiplets_used().len()
        );
    }

    println!("{}", table3::run());
    println!("{}", fig11::run());
}
