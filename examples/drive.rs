//! Drive timelines: a worked cruise → urban → degraded drive on the
//! paper's 6×6 package, showing what each online mode switch costs.
//!
//! Run with: `cargo run --release --example drive`

use npu_core::prelude::*;
use npu_tensor::Seconds;

fn main() {
    // A drive is an ordered timeline of (scenario, duration) segments.
    // This is the ROADMAP's headline: one second of highway cruise, a
    // second of dense urban traffic (extra detector head, jittered
    // camera triggers), then degraded operation after losing three
    // cameras.
    let drive = Drive::cruise_urban_degraded();

    // Custom timelines compose the same way as custom scenarios:
    let rig = CameraRig::octa_ring();
    let custom = Drive::new(
        "pit-stop",
        vec![
            DriveSegment::new(
                Scenario::new("cruise", rig, OperatingMode::HighwayCruise),
                Seconds::new(1.0),
            ),
            DriveSegment::new(
                Scenario::new(
                    "limp-home",
                    rig,
                    OperatingMode::DegradedDropout { lost_cameras: 5 },
                ),
                Seconds::new(1.0),
            ),
        ],
    );

    let pkg = McmPackage::simba_6x6();
    let model = FittedMaestro::new();
    let reconfig = ReconfigModel::default();

    for drive in [&drive, &custom] {
        let out = simulate_drive(drive, &pkg, &model, &reconfig);
        println!(
            "\n{} on {} — {} frames offered, {} dropped ({:.1}% of the drive)",
            out.drive,
            out.package,
            out.total_offered,
            out.total_dropped,
            out.drop_rate() * 100.0
        );
        for s in &out.segments {
            println!(
                "  [{:>4.1}s] {:<18} {:>3} frames ({} dropped)  DES {:>6.2} ms  mean lat {:>7.1} ms",
                s.start.as_secs(),
                s.scenario,
                s.offered,
                s.dropped,
                s.des_interval.as_millis(),
                s.mean_latency.as_millis(),
            );
        }
        for t in &out.transitions {
            println!(
                "  switch {} -> {}: re-match {:.2} ms ({} chiplets re-programmed, \
                 {:.1} MiB reloaded), {} frame(s) dropped",
                t.from,
                t.to,
                t.rematch_latency.as_millis(),
                t.reprogrammed,
                t.weight_bytes.as_f64() / (1024.0 * 1024.0),
                t.dropped,
            );
        }
        // The accounting always balances: every dropped frame belongs to
        // exactly one spin-up window.
        assert_eq!(
            out.total_dropped,
            out.transitions.iter().map(|t| t.dropped).sum::<usize>()
        );
    }
    println!(
        "\nmode switches are priced by the schedule diff: a switch that only \
         changes arrival pacing re-programs nothing and drops nothing"
    );
}
