//! Discrete-event streaming simulation: frames from the 8-camera source
//! flow through the matched schedule; the DES-measured interval validates
//! the analytical pipelining latency, and a 30 FPS feed shows why the
//! paper's dual-NPU scaling matters (one NPU sustains ~11 FPS).
//!
//! Run with: `cargo run --release --example streaming_sim`

use npu_core::prelude::*;

fn main() {
    let platform = Platform::simba_6x6();
    let pipeline = PerceptionConfig::default().build();
    let outcome = platform.schedule_perception(&pipeline);

    // Saturation mode: measure the sustainable frame rate.
    let sat = platform.simulate(&outcome.schedule, 24);
    println!("analytical pipe latency : {}", outcome.report.pipe);
    println!("DES steady interval     : {}", sat.steady_interval);
    println!(
        "agreement               : {:+.2}%",
        (sat.steady_interval.as_secs() / outcome.report.pipe.as_secs() - 1.0) * 100.0
    );
    println!("DES frame latency mean  : {}", sat.mean_latency);
    println!("DES sustained rate      : {:.1} FPS", sat.throughput_fps);
    if let Some((c, frac)) = sat.bottleneck() {
        println!("bottleneck chiplet      : {c} ({:.0}% busy)", frac * 100.0);
    }

    // Camera mode at 10 FPS: the pipeline keeps up, queues stay bounded.
    let cam = platform.simulate_camera_feed(&outcome.schedule, 24, 10.0);
    println!("\n10 FPS camera feed:");
    println!(
        "  interval {}  latency mean {}  max {}",
        cam.steady_interval, cam.mean_latency, cam.max_latency
    );

    // Camera mode at 30 FPS: arrivals outpace the ~11 FPS service rate;
    // per-frame latency grows with queueing delay - the motivation for
    // activating the second NPU (paper Sec. V-B).
    let cam30 = platform.simulate_camera_feed(&outcome.schedule, 24, 30.0);
    println!("\n30 FPS camera feed (overload):");
    println!(
        "  interval {}  latency mean {}  max {}",
        cam30.steady_interval, cam30.mean_latency, cam30.max_latency
    );
}
