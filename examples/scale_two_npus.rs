//! Scaling to two active NPUs (72 chiplets): the minimizing matcher keeps
//! sharding until the pipelining latency halves (paper §V-B, Fig. 10).
//!
//! Run with: `cargo run --release --example scale_two_npus`

use npu_core::prelude::*;

fn main() {
    println!("{}", npu_core::experiments::fig10::run());

    // Side-by-side platform comparison.
    let pipeline = PerceptionConfig::default().build();
    let single = Platform::simba_6x6().schedule_perception(&pipeline);
    let dual = Platform::dual_npu().schedule_minimized(&pipeline);

    println!(
        "single NPU (36 chiplets): pipe {}  -> {:.1} FPS",
        single.report.pipe,
        single.report.throughput_fps()
    );
    println!(
        "dual   NPU (72 chiplets): pipe {}  -> {:.1} FPS",
        dual.report.pipe,
        dual.report.throughput_fps()
    );
    println!(
        "speedup: {:.2}x (paper: ~2x, 41.1 ms final pipelining latency)",
        single.report.pipe / dual.report.pipe
    );
}
