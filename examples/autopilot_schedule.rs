//! Full Algorithm-1 walkthrough: the step-by-step trace of nested greedy
//! throughput matching on the 6×6 MCM (the process behind the paper's
//! Figs. 5–8), followed by the per-stage mapping panels.
//!
//! Run with: `cargo run --release --example autopilot_schedule`

use npu_core::prelude::*;

fn main() {
    let platform = Platform::simba_6x6();
    let pipeline = PerceptionConfig::default().build();
    let outcome = platform.schedule_perception(&pipeline);

    println!("Algorithm 1 trace (paper Sec. IV):");
    for (i, step) in outcome.trace.iter().enumerate() {
        println!(
            "  step {:2}: {:45} pipe {:>10}  free chiplets {:2}",
            i,
            step.description,
            step.pipe.to_string(),
            step.chiplets_remaining
        );
    }

    println!("\nChiplet occupancy (one pipelining window):");
    let pkg = platform.package();
    let model = FittedMaestro::new();
    print!(
        "{}",
        npu_core::sched::gantt::render(&outcome.schedule, pkg, &model, 48)
    );

    println!("\nPer-stage mapping panels (paper Figs. 5-8):");
    println!("{}", npu_core::experiments::fig5to8::run());

    println!("NoP data-movement costs (paper Fig. 9):");
    println!("{}", npu_core::experiments::fig9::run());
}
