//! Round-trip tests of the `serde_derive` stub across the type shapes
//! this workspace uses (and the parser edge cases it must survive).

use std::collections::BTreeMap;
use std::marker::PhantomData;

use serde::{Deserialize, Serialize, Value};

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct Named {
    id: u64,
    scale: f64,
    label: String,
    maybe: Option<i32>,
    xs: Vec<u8>,
    pair: (u32, bool),
    map: BTreeMap<u64, String>,
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct NewType(u64);

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct Tuple(u64, String);

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct Unit;

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum Mixed {
    Empty,
    One(u64),
    Two(u64, f64),
    Fields { a: u64, b: String },
}

/// A field type containing a `->` return arrow: the type skipper must
/// not treat its `>` as a closing angle bracket and drop later fields.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct WithArrow {
    marker: PhantomData<fn(u64) -> u64>,
    count: u64,
}

fn round_trip<T: Serialize + Deserialize + PartialEq + std::fmt::Debug>(value: &T) {
    let back = T::from_value(&value.to_value()).expect("round trip");
    assert_eq!(&back, value);
}

#[test]
fn named_struct_round_trips() {
    round_trip(&Named {
        id: 7,
        scale: 0.125,
        label: "l".into(),
        maybe: Some(-3),
        xs: vec![1, 2, 3],
        pair: (9, true),
        map: BTreeMap::from([(4, "four".into())]),
    });
}

#[test]
fn newtype_is_transparent() {
    round_trip(&NewType(42));
    assert_eq!(NewType(42).to_value(), Value::UInt(42));
}

#[test]
fn tuple_and_unit_structs_round_trip() {
    round_trip(&Tuple(1, "x".into()));
    round_trip(&Unit);
}

#[test]
fn enum_variants_round_trip() {
    for v in [
        Mixed::Empty,
        Mixed::One(5),
        Mixed::Two(6, 1.5),
        Mixed::Fields {
            a: 8,
            b: "y".into(),
        },
    ] {
        round_trip(&v);
    }
    assert_eq!(Mixed::Empty.to_value(), Value::String("Empty".into()));
}

#[test]
fn return_arrow_in_field_type_keeps_later_fields() {
    let v = WithArrow {
        marker: PhantomData,
        count: 11,
    };
    assert_eq!(v.to_value().get("count"), Some(&Value::UInt(11)));
    round_trip(&v);
}
