//! Offline stub of the [`serde`](https://serde.rs) facade.
//!
//! This workspace builds in environments with no crates.io access, so the
//! handful of third-party crates it depends on are vendored as minimal
//! stubs implementing exactly the API surface the simulator uses (see
//! `vendor/README.md`). This crate provides:
//!
//! - the [`Serialize`] / [`Deserialize`] traits, defined over an
//!   in-memory JSON-like [`Value`] tree rather than serde's
//!   visitor/format machinery;
//! - derive macros re-exported from `serde_derive`, compatible with the
//!   plain `#[derive(Serialize, Deserialize)]` forms used in this
//!   workspace (no `#[serde(...)]` attributes);
//! - impls for the primitives, containers and tuples the simulator
//!   serializes.
//!
//! `serde_json` (also vendored) renders [`Value`] to JSON text and back,
//! following real serde_json conventions: structs are objects, newtype
//! structs are transparent, unit enum variants are strings and data
//! variants are single-key objects.

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::hash::Hash;

pub use serde_derive::{Deserialize, Serialize};

/// An in-memory JSON value: the interchange type of the stub traits.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Negative integers (and any parsed integer that fits only i64).
    Int(i64),
    /// Non-negative integers.
    UInt(u64),
    /// Floating-point numbers.
    Float(f64),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object, in insertion order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The object entries, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric contents widened to `f64`, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Int(i) => Some(i as f64),
            Value::UInt(u) => Some(u as f64),
            Value::Float(f) => Some(f),
            _ => None,
        }
    }

    /// Integer contents as `u64`, if non-negative integral.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::UInt(u) => Some(u),
            Value::Int(i) if i >= 0 => Some(i as u64),
            _ => None,
        }
    }

    /// Integer contents as `i64`, if integral and in range.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::Int(i) => Some(i),
            Value::UInt(u) => i64::try_from(u).ok(),
            _ => None,
        }
    }

    /// The boolean, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// Whether this is JSON `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Looks up an object key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()
            .and_then(|entries| entries.iter().find(|(k, _)| k == key))
            .map(|(_, v)| v)
    }
}

/// Serialization / deserialization error.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    /// An error carrying an arbitrary message.
    pub fn custom(msg: impl fmt::Display) -> Self {
        Error {
            msg: msg.to_string(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Types convertible to a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into the interchange [`Value`].
    fn to_value(&self) -> Value;
}

/// Types reconstructible from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from the interchange [`Value`].
    fn from_value(value: &Value) -> Result<Self, Error>;
}

/// Derive-macro helper: extracts and deserializes a struct field.
#[doc(hidden)]
pub fn __field<T: Deserialize>(entries: &[(String, Value)], name: &str) -> Result<T, Error> {
    let value = entries
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .ok_or_else(|| Error::custom(format!("missing field `{name}`")))?;
    T::from_value(value).map_err(|e| Error::custom(format!("field `{name}`: {e}")))
}

/// Derive-macro helper: indexes and deserializes a tuple-struct element.
#[doc(hidden)]
pub fn __element<T: Deserialize>(items: &[Value], index: usize) -> Result<T, Error> {
    let value = items
        .get(index)
        .ok_or_else(|| Error::custom(format!("missing tuple element {index}")))?;
    T::from_value(value).map_err(|e| Error::custom(format!("element {index}: {e}")))
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

impl Deserialize for () {
    fn from_value(value: &Value) -> Result<Self, Error> {
        if value.is_null() {
            Ok(())
        } else {
            Err(Error::custom("expected null"))
        }
    }
}

impl<T> Serialize for std::marker::PhantomData<T> {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

impl<T> Deserialize for std::marker::PhantomData<T> {
    fn from_value(_: &Value) -> Result<Self, Error> {
        Ok(std::marker::PhantomData)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_bool()
            .ok_or_else(|| Error::custom("expected bool"))
    }
}

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }

        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let raw = value
                    .as_u64()
                    .ok_or_else(|| Error::custom(concat!("expected ", stringify!($t))))?;
                <$t>::try_from(raw)
                    .map_err(|_| Error::custom(concat!("out of range for ", stringify!($t))))
            }
        }
    )*};
}

impl_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 {
                    Value::UInt(v as u64)
                } else {
                    Value::Int(v)
                }
            }
        }

        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let raw = value
                    .as_i64()
                    .ok_or_else(|| Error::custom(concat!("expected ", stringify!($t))))?;
                <$t>::try_from(raw)
                    .map_err(|_| Error::custom(concat!("out of range for ", stringify!($t))))
            }
        }
    )*};
}

impl_int!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }

        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                value
                    .as_f64()
                    .map(|f| f as $t)
                    .ok_or_else(|| Error::custom(concat!("expected ", stringify!($t))))
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_str()
            .map(str::to_owned)
            .ok_or_else(|| Error::custom("expected string"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let s = value
            .as_str()
            .ok_or_else(|| Error::custom("expected char"))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::custom("expected single-char string")),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        if value.is_null() {
            Ok(None)
        } else {
            T::from_value(value).map(Some)
        }
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        T::from_value(value).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_array()
            .ok_or_else(|| Error::custom("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let items: Vec<T> = Vec::from_value(value)?;
        <[T; N]>::try_from(items)
            .map_err(|items| Error::custom(format!("expected {N} elements, got {}", items.len())))
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+)),*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }

        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let items = value
                    .as_array()
                    .ok_or_else(|| Error::custom("expected tuple array"))?;
                Ok(($(__element::<$name>(items, $idx)?,)+))
            }
        }
    )*};
}

impl_tuple!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3)
);

/// Renders a map key as a JSON object key (serde_json stringifies
/// scalar keys).
fn key_to_string(key: &Value) -> Result<String, Error> {
    match key {
        Value::String(s) => Ok(s.clone()),
        Value::UInt(u) => Ok(u.to_string()),
        Value::Int(i) => Ok(i.to_string()),
        Value::Bool(b) => Ok(b.to_string()),
        _ => Err(Error::custom("map key must be a scalar")),
    }
}

/// Parses a JSON object key back into a key type (inverse of
/// [`key_to_string`]).
fn key_from_string<K: Deserialize>(key: &str) -> Result<K, Error> {
    if let Ok(k) = K::from_value(&Value::String(key.to_owned())) {
        return Ok(k);
    }
    if let Ok(u) = key.parse::<u64>() {
        if let Ok(k) = K::from_value(&Value::UInt(u)) {
            return Ok(k);
        }
    }
    if let Ok(i) = key.parse::<i64>() {
        if let Ok(k) = K::from_value(&Value::Int(i)) {
            return Ok(k);
        }
    }
    if let Ok(b) = key.parse::<bool>() {
        if let Ok(k) = K::from_value(&Value::Bool(b)) {
            return Ok(k);
        }
    }
    Err(Error::custom(format!("cannot parse map key `{key}`")))
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| {
                    let key = key_to_string(&k.to_value()).expect("scalar map key");
                    (key, v.to_value())
                })
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_object()
            .ok_or_else(|| Error::custom("expected object"))?
            .iter()
            .map(|(k, v)| Ok((key_from_string(k)?, V::from_value(v)?)))
            .collect()
    }
}

impl<K: Serialize, V: Serialize> Serialize for HashMap<K, V> {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| {
                let key = key_to_string(&k.to_value()).expect("scalar map key");
                (key, v.to_value())
            })
            .collect();
        entries.sort_by(|(a, _), (b, _)| a.cmp(b));
        Value::Object(entries)
    }
}

impl<K: Deserialize + Eq + Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_object()
            .ok_or_else(|| Error::custom("expected object"))?
            .iter()
            .map(|(k, v)| Ok((key_from_string(k)?, V::from_value(v)?)))
            .collect()
    }
}
