//! Offline stub of `serde_json`.
//!
//! Renders the vendored serde stub's [`Value`] tree to JSON text
//! ([`to_string`], [`to_string_pretty`]) and parses JSON text back
//! ([`from_str`]). Supports the full JSON grammar: objects, arrays,
//! strings with escapes (including `\u` surrogate pairs), numbers,
//! booleans and null. Non-finite floats serialize as `null`, matching
//! real serde_json's lossy modes.

use std::char;

pub use serde::{Error, Value};

/// Serializes a value to compact JSON.
pub fn to_string<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes a value to 2-space-indented JSON.
pub fn to_string_pretty<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Deserializes a value from JSON text.
pub fn from_str<T: serde::Deserialize>(text: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at byte {}",
            parser.pos
        )));
    }
    T::from_value(&value)
}

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // `Display` for f64 is shortest-round-trip, but renders
                // integral values without a decimal point; keep the point
                // so the value re-parses as a float-typed number.
                let text = f.to_string();
                out.push_str(&text);
                if !text.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::String(s) => write_string(out, s),
        Value::Array(items) => write_seq(out, items.iter(), write_value, ('[', ']'), indent, depth),
        Value::Object(entries) => write_seq(
            out,
            entries.iter(),
            |out, (key, item), indent, depth| {
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth);
            },
            ('{', '}'),
            indent,
            depth,
        ),
    }
}

fn write_seq<I: ExactSizeIterator>(
    out: &mut String,
    items: I,
    mut write_item: impl FnMut(&mut String, I::Item, Option<usize>, usize),
    (open, close): (char, char),
    indent: Option<usize>,
    depth: usize,
) {
    out.push(open);
    let empty = items.len() == 0;
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * (depth + 1)));
        }
        write_item(out, item, indent, depth + 1);
    }
    if !empty {
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * depth));
        }
    }
    out.push(close);
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            other => Err(Error::custom(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_keyword(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error::custom(format!(
                "invalid keyword at byte {}",
                self.pos
            )))
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => {
                    return Err(Error::custom(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::custom(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::custom("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.parse_hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect \uXXXX low half.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(Error::custom("unpaired surrogate in \\u escape"));
                                }
                                char::from_u32(0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00))
                            } else {
                                char::from_u32(hi)
                            };
                            out.push(c.ok_or_else(|| Error::custom("invalid \\u escape"))?);
                            continue;
                        }
                        other => {
                            return Err(Error::custom(format!("invalid escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is a &str, so
                    // slicing at char boundaries is safe).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::custom("invalid UTF-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(Error::custom("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| Error::custom("invalid \\u escape"))?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| Error::custom("invalid \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::custom(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_value() {
        let v = Value::Object(vec![
            ("name".into(), Value::String("a \"b\"\n".into())),
            (
                "xs".into(),
                Value::Array(vec![Value::UInt(3), Value::Float(0.25), Value::Null]),
            ),
            ("neg".into(), Value::Int(-7)),
            ("ok".into(), Value::Bool(true)),
        ]);
        let compact = to_string(&v).unwrap();
        let back: Value = from_str(&compact).unwrap();
        assert_eq!(back, v);
        let pretty = to_string_pretty(&v).unwrap();
        let back: Value = from_str(&pretty).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn floats_keep_a_decimal_point() {
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        let back: f64 = from_str("2.0").unwrap();
        assert_eq!(back, 2.0);
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(from_str::<Value>("{} x").is_err());
    }

    #[test]
    fn parses_unicode_escapes() {
        let escaped: String = from_str(r#""\u00e9 \ud83d\ude00""#).unwrap();
        // A high surrogate must pair with a following low surrogate.
        assert!(from_str::<String>(r#""\ud800\u0041""#).is_err());
        assert!(from_str::<String>(r#""\ud800x""#).is_err());
        assert_eq!(escaped, "é 😀");
        let raw: String = from_str("\"é 😀\"").unwrap();
        assert_eq!(raw, "é 😀");
    }
}
