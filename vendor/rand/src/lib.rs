//! Offline stub of the `rand` crate.
//!
//! Provides [`rngs::StdRng`], [`SeedableRng`] and [`Rng::gen_range`] —
//! the surface the discrete-event simulator uses for arrival jitter.
//! The generator is SplitMix64: deterministic, seedable and
//! statistically adequate for jitter sampling (it is *not* the real
//! `StdRng`'s ChaCha12, so streams differ from upstream `rand`, but all
//! simulator seeds are workspace-internal).

use std::ops::Range;

/// Seedable random generators.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Random value generation over a [`Range`].
pub trait Rng {
    /// The next raw 64 bits of the stream.
    fn next_u64(&mut self) -> u64;

    /// Uniform sample from `[range.start, range.end)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample(self.next_u64(), range)
    }
}

/// Types uniformly sampleable from a half-open range.
pub trait SampleUniform: PartialOrd + Copy {
    /// Maps 64 raw bits onto the range.
    fn sample(bits: u64, range: Range<Self>) -> Self;
}

impl SampleUniform for f64 {
    fn sample(bits: u64, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "empty range");
        // 53 mantissa bits -> uniform in [0, 1).
        let unit = (bits >> 11) as f64 / (1u64 << 53) as f64;
        let x = range.start + unit * (range.end - range.start);
        // Rounding can land exactly on `end`; keep the half-open contract.
        x.min(range.end.next_down())
    }
}

impl SampleUniform for u64 {
    fn sample(bits: u64, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "empty range");
        range.start + bits % (range.end - range.start)
    }
}

impl SampleUniform for usize {
    fn sample(bits: u64, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "empty range");
        range.start + (bits % (range.end - range.start) as u64) as usize
    }
}

/// Concrete generator types.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic SplitMix64 generator (stands in for rand's
    /// ChaCha12-based `StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn f64_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let x = rng.gen_range(0.0..1.0);
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn f64_worst_case_bits_stay_below_end() {
        // All-ones mantissa bits round toward `end`; the clamp must keep
        // the half-open contract even then.
        for range in [1.0..2.0, 1e16..1e16 + 4.0] {
            let x = super::SampleUniform::sample(u64::MAX, range.clone());
            assert!(x < range.end, "{x} escaped {range:?}");
        }
    }

    #[test]
    fn u64_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x = rng.gen_range(5u64..9);
            assert!((5..9).contains(&x));
        }
    }
}
