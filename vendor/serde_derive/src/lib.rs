//! Offline stub of `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` for the
//! shapes this workspace actually uses — non-generic structs (named,
//! tuple, unit) and enums (unit, tuple and struct variants), with no
//! `#[serde(...)]` attributes — by hand-parsing the `proc_macro` token
//! stream (the environment has no network, so `syn`/`quote` are
//! unavailable). Generated impls target the vendored `serde` stub's
//! `Value`-tree traits and follow real serde conventions: structs become
//! objects, newtype structs are transparent, unit variants become
//! strings and data variants single-key objects.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Field layout of a struct or an enum variant.
enum Fields {
    Unit,
    /// Tuple fields; the count.
    Unnamed(usize),
    /// Named fields, in declaration order.
    Named(Vec<String>),
}

enum Data {
    Struct(Fields),
    Enum(Vec<(String, Fields)>),
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, gen_serialize)
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, gen_deserialize)
}

fn expand(input: TokenStream, gen: fn(&str, &Data) -> String) -> TokenStream {
    let generated = match parse(input) {
        Ok((name, data)) => gen(&name, &data),
        Err(msg) => format!("compile_error!({msg:?});"),
    };
    generated
        .parse()
        .expect("serde_derive stub generated invalid Rust")
}

/// Parses `[attrs] [vis] (struct|enum) Name [generics] body` into the
/// type name and its field layout.
fn parse(input: TokenStream) -> Result<(String, Data), String> {
    let mut tokens = input.into_iter().peekable();
    let kind = loop {
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next(); // the [...] attribute group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                if let Some(TokenTree::Group(g)) = tokens.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        tokens.next(); // pub(crate) / pub(super)
                    }
                }
            }
            Some(TokenTree::Ident(id)) => {
                let word = id.to_string();
                if word == "struct" || word == "enum" {
                    break word;
                }
                return Err(format!("unexpected token `{word}` before struct/enum"));
            }
            Some(other) => return Err(format!("unexpected token `{other}`")),
            None => return Err("ran out of tokens before struct/enum".into()),
        }
    };

    let name = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, got {other:?}")),
    };

    if let Some(TokenTree::Punct(p)) = tokens.peek() {
        if p.as_char() == '<' {
            return Err(format!(
                "serde_derive stub: generic type `{name}` is not supported"
            ));
        }
    }

    let data = if kind == "struct" {
        match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Data::Struct(Fields::Named(parse_named_fields(g.stream())?))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Data::Struct(Fields::Unnamed(count_tuple_fields(g.stream())))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Data::Struct(Fields::Unit),
            other => return Err(format!("unexpected struct body: {other:?}")),
        }
    } else {
        match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Data::Enum(parse_variants(g.stream())?)
            }
            other => return Err(format!("unexpected enum body: {other:?}")),
        }
    };

    Ok((name, data))
}

/// Parses `{ [attrs] [vis] name: Type, ... }` field lists.
fn parse_named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let mut tokens = stream.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        // Skip attributes and visibility ahead of the field name.
        let name = loop {
            match tokens.next() {
                None => return Ok(fields),
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    tokens.next();
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    if let Some(TokenTree::Group(g)) = tokens.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            tokens.next();
                        }
                    }
                }
                Some(TokenTree::Ident(id)) => break id.to_string(),
                Some(other) => return Err(format!("unexpected field token `{other}`")),
            }
        };
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => return Err(format!("expected `:` after field `{name}`, got {other:?}")),
        }
        fields.push(name);
        // Skip the type: consume until a comma at angle-bracket depth 0.
        let mut angle_depth = 0i32;
        let mut prev_dash = false;
        loop {
            match tokens.next() {
                None => return Ok(fields),
                Some(TokenTree::Punct(p)) => {
                    match p.as_char() {
                        '<' => angle_depth += 1,
                        // The '>' of a '->' return arrow (fn-pointer
                        // types) is not a closing bracket.
                        '>' if !prev_dash => angle_depth -= 1,
                        ',' if angle_depth == 0 => break,
                        _ => {}
                    }
                    prev_dash = p.as_char() == '-';
                }
                Some(_) => prev_dash = false,
            }
        }
    }
}

/// Counts the comma-separated fields of a tuple struct/variant.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut count = 0usize;
    let mut saw_tokens = false;
    let mut angle_depth = 0i32;
    let mut prev_dash = false;
    for tt in stream {
        if let TokenTree::Punct(p) = &tt {
            match p.as_char() {
                '<' => angle_depth += 1,
                // '->' return arrows do not close an angle bracket.
                '>' if !prev_dash => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    count += 1;
                    saw_tokens = false;
                    prev_dash = false;
                    continue;
                }
                _ => {}
            }
            prev_dash = p.as_char() == '-';
        } else {
            prev_dash = false;
        }
        saw_tokens = true;
    }
    count + usize::from(saw_tokens)
}

/// Parses `{ [attrs] Variant[(..)|{..}][= disc], ... }` enum bodies.
fn parse_variants(stream: TokenStream) -> Result<Vec<(String, Fields)>, String> {
    let mut tokens = stream.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        let name = loop {
            match tokens.next() {
                None => return Ok(variants),
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    tokens.next();
                }
                Some(TokenTree::Ident(id)) => break id.to_string(),
                Some(other) => return Err(format!("unexpected variant token `{other}`")),
            }
        };
        let fields = match tokens.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let body = g.stream();
                tokens.next();
                Fields::Named(parse_named_fields(body)?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let body = g.stream();
                tokens.next();
                Fields::Unnamed(count_tuple_fields(body))
            }
            _ => Fields::Unit,
        };
        variants.push((name, fields));
        // Skip any discriminant up to the separating comma.
        loop {
            match tokens.next() {
                None => return Ok(variants),
                Some(TokenTree::Punct(p)) if p.as_char() == ',' => break,
                Some(_) => {}
            }
        }
    }
}

fn gen_serialize(name: &str, data: &Data) -> String {
    let body = match data {
        Data::Struct(Fields::Unit) => "::serde::Value::Null".to_string(),
        Data::Struct(Fields::Unnamed(1)) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Data::Struct(Fields::Unnamed(n)) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
        Data::Struct(Fields::Named(fields)) => named_fields_to_object(fields, "self."),
        Data::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|(variant, fields)| match fields {
                    Fields::Unit => format!(
                        "{name}::{variant} => \
                         ::serde::Value::String(::std::string::String::from({variant:?})),"
                    ),
                    Fields::Unnamed(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let inner = if *n == 1 {
                            "::serde::Serialize::to_value(__f0)".to_string()
                        } else {
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!("::serde::Value::Array(vec![{}])", items.join(", "))
                        };
                        format!(
                            "{name}::{variant}({}) => ::serde::Value::Object(vec![\
                             (::std::string::String::from({variant:?}), {inner})]),",
                            binds.join(", ")
                        )
                    }
                    Fields::Named(fields) => {
                        let binds = fields.join(", ");
                        let inner = named_fields_to_object(fields, "");
                        format!(
                            "{name}::{variant} {{ {binds} }} => ::serde::Value::Object(vec![\
                             (::std::string::String::from({variant:?}), {inner})]),"
                        )
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

/// `Object` expression serializing `fields`; `prefix` is `self.` for
/// struct fields or empty for match-arm bindings.
fn named_fields_to_object(fields: &[String], prefix: &str) -> String {
    let entries: Vec<String> = fields
        .iter()
        .map(|f| {
            format!(
                "(::std::string::String::from({f:?}), \
                 ::serde::Serialize::to_value(&{prefix}{f}))"
            )
        })
        .collect();
    format!("::serde::Value::Object(vec![{}])", entries.join(", "))
}

fn gen_deserialize(name: &str, data: &Data) -> String {
    let body = match data {
        Data::Struct(Fields::Unit) => format!("::std::result::Result::Ok({name})"),
        Data::Struct(Fields::Unnamed(1)) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__value)?))")
        }
        Data::Struct(Fields::Unnamed(n)) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::__element(__items, {i})?"))
                .collect();
            format!(
                "let __items = __value.as_array().ok_or_else(|| \
                 ::serde::Error::custom(concat!(\"expected array for \", {name:?})))?;\n\
                 ::std::result::Result::Ok({name}({}))",
                items.join(", ")
            )
        }
        Data::Struct(Fields::Named(fields)) => {
            let ctor = named_fields_from_object(fields);
            format!(
                "let __obj = __value.as_object().ok_or_else(|| \
                 ::serde::Error::custom(concat!(\"expected object for \", {name:?})))?;\n\
                 ::std::result::Result::Ok({name} {ctor})"
            )
        }
        Data::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|(_, f)| matches!(f, Fields::Unit))
                .map(|(variant, _)| {
                    format!("{variant:?} => ::std::result::Result::Ok({name}::{variant}),")
                })
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter_map(|(variant, fields)| match fields {
                    Fields::Unit => None,
                    Fields::Unnamed(1) => Some(format!(
                        "{variant:?} => ::std::result::Result::Ok({name}::{variant}(\
                         ::serde::Deserialize::from_value(__inner)?)),"
                    )),
                    Fields::Unnamed(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::__element(__items, {i})?"))
                            .collect();
                        Some(format!(
                            "{variant:?} => {{\n\
                             let __items = __inner.as_array().ok_or_else(|| \
                             ::serde::Error::custom(\"expected variant array\"))?;\n\
                             ::std::result::Result::Ok({name}::{variant}({}))\n\
                             }}",
                            items.join(", ")
                        ))
                    }
                    Fields::Named(fields) => {
                        let ctor = named_fields_from_object(fields);
                        Some(format!(
                            "{variant:?} => {{\n\
                             let __obj = __inner.as_object().ok_or_else(|| \
                             ::serde::Error::custom(\"expected variant object\"))?;\n\
                             ::std::result::Result::Ok({name}::{variant} {ctor})\n\
                             }}"
                        ))
                    }
                })
                .collect();
            format!(
                "match __value {{\n\
                 ::serde::Value::String(__s) => match __s.as_str() {{\n\
                     {unit}\n\
                     __other => ::std::result::Result::Err(::serde::Error::custom(\
                     format!(\"unknown {name} variant `{{__other}}`\"))),\n\
                 }},\n\
                 ::serde::Value::Object(__entries) if __entries.len() == 1 => {{\n\
                     let (__tag, __inner) = &__entries[0];\n\
                     match __tag.as_str() {{\n\
                         {data}\n\
                         __other => ::std::result::Result::Err(::serde::Error::custom(\
                         format!(\"unknown {name} variant `{{__other}}`\"))),\n\
                     }}\n\
                 }},\n\
                 _ => ::std::result::Result::Err(::serde::Error::custom(\
                 concat!(\"expected \", {name:?}, \" variant\"))),\n\
                 }}",
                unit = unit_arms.join("\n"),
                data = data_arms.join("\n"),
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn from_value(__value: &::serde::Value) \
             -> ::std::result::Result<Self, ::serde::Error> {{\n{body}\n}}\n\
         }}"
    )
}

/// `{ field: __field(__obj, "field")?, ... }` constructor body.
fn named_fields_from_object(fields: &[String]) -> String {
    let entries: Vec<String> = fields
        .iter()
        .map(|f| format!("{f}: ::serde::__field(__obj, {f:?})?"))
        .collect();
    format!("{{ {} }}", entries.join(", "))
}
