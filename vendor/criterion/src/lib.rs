//! Offline stub of the `criterion` benchmark harness.
//!
//! Implements the API shape the `repro` crate's benches use —
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`criterion_group!`] / [`criterion_main!`] and [`black_box`] — with a
//! simple wall-clock runner: each benchmark does one warm-up iteration,
//! then `sample_size` timed samples, and prints the median. No
//! statistics, plotting or baseline storage; set the
//! `CRITERION_SAMPLE_SIZE` environment variable to override the default
//! of 10 samples, or pass `--test` (`cargo bench … -- --test`) to run
//! each benchmark a single time as a CI smoke check, like the real
//! harness's test mode.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Entry point handed to benchmark functions.
pub struct Criterion {
    sample_size: usize,
    /// `--test` smoke mode: one sample per benchmark, and group-level
    /// sample-size overrides are ignored, mirroring the real harness.
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().skip(1).any(|a| a == "--test");
        let sample_size = if test_mode {
            1
        } else {
            std::env::var("CRITERION_SAMPLE_SIZE")
                .ok()
                .and_then(|s| s.parse().ok())
                .unwrap_or(10usize)
                .max(1)
        };
        Criterion {
            sample_size,
            test_mode,
        }
    }
}

impl Criterion {
    /// Runs one benchmark and prints its median sample time.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(name, self.sample_size, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            test_mode: self.test_mode,
            _parent: self,
        }
    }
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    test_mode: bool,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of timed samples for this group. A no-op in
    /// `--test` smoke mode, where every benchmark runs exactly once.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        if !self.test_mode {
            self.sample_size = n.max(1);
        }
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&format!("{}/{}", self.name, name), self.sample_size, &mut f);
        self
    }

    /// Ends the group (kept for API compatibility; no-op).
    pub fn finish(self) {}
}

/// Times the closure handed to [`Bencher::iter`].
pub struct Bencher {
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Runs `f` once per sample, recording wall-clock time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f()); // warm-up
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(f());
            self.samples.push(start.elapsed());
        }
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(name: &str, sample_size: usize, f: &mut F) {
    let mut bencher = Bencher {
        sample_size,
        samples: Vec::with_capacity(sample_size),
    };
    f(&mut bencher);
    bencher.samples.sort();
    let median = bencher
        .samples
        .get(bencher.samples.len() / 2)
        .copied()
        .unwrap_or_default();
    println!(
        "{name:<44} median {:>12} (n={})",
        format_duration(median),
        bencher.samples.len()
    );
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos >= 1_000_000_000 {
        format!("{:.3} s", d.as_secs_f64())
    } else if nanos >= 1_000_000 {
        format!("{:.3} ms", nanos as f64 / 1e6)
    } else if nanos >= 1_000 {
        format!("{:.3} us", nanos as f64 / 1e3)
    } else {
        format!("{nanos} ns")
    }
}

/// Declares a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, criterion-style.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench`/`cargo test` pass harness flags such as
            // `--bench`; this minimal runner ignores all of them except
            // `--test`, which switches to one-sample smoke mode.
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn criterion(sample_size: usize, test_mode: bool) -> Criterion {
        Criterion {
            sample_size,
            test_mode,
        }
    }

    #[test]
    fn bench_function_runs_closure() {
        let mut c = criterion(3, false);
        let mut runs = 0usize;
        c.bench_function("counts", |b| b.iter(|| runs += 1));
        // 1 warm-up + 3 samples.
        assert_eq!(runs, 4);
    }

    #[test]
    fn group_sample_size_has_floor_of_one() {
        let mut c = criterion(5, false);
        let mut g = c.benchmark_group("g");
        g.sample_size(0);
        let mut runs = 0usize;
        g.bench_function("x", |b| b.iter(|| runs += 1));
        g.finish();
        assert_eq!(runs, 2);
    }

    #[test]
    fn test_mode_runs_once_and_ignores_group_sample_size() {
        let mut c = criterion(1, true);
        let mut g = c.benchmark_group("g");
        // Benches routinely pin their own sample size; smoke mode must
        // still win or CI pays the full measurement run.
        g.sample_size(10);
        let mut runs = 0usize;
        g.bench_function("x", |b| b.iter(|| runs += 1));
        g.finish();
        // 1 warm-up + 1 sample.
        assert_eq!(runs, 2);
    }
}
