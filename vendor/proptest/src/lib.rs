//! Offline stub of the `proptest` property-testing framework.
//!
//! Supports the subset this workspace's property tests use: the
//! [`proptest!`] macro (with an optional `#![proptest_config(...)]`
//! header), range strategies over integers and floats, tuples of
//! strategies (up to 4), [`sample::select`], [`collection::vec`], and
//! the `prop_assert*` macros. Cases are sampled from a deterministic seeded generator;
//! unlike real proptest there is **no shrinking** — a failing case
//! panics with the sampled inputs left to the assertion message.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

pub mod strategy {
    //! The [`Strategy`] trait and built-in strategies.

    use std::ops::Range;

    use super::TestRng;

    /// A recipe for generating random values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! impl_range_strategy {
        ($($t:ty => $via:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range::<$via>(self.start as $via..self.end as $via) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(
        u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => usize,
        f32 => f64, f64 => f64
    );

    macro_rules! impl_signed_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range");
                    // i128 arithmetic: the widest supported span
                    // (i64::MIN..i64::MAX) still fits in u64.
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.gen_range::<u64>(0..span) as i128) as $t
                }
            }
        )*};
    }

    impl_signed_range_strategy!(i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident/$i:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$i.sample(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy!((A / 0, B / 1)(A / 0, B / 1, C / 2)(
        A / 0,
        B / 1,
        C / 2,
        D / 3
    ));
}

pub mod sample {
    //! Strategies choosing among explicit values.

    use super::strategy::Strategy;
    use super::TestRng;

    /// Uniform choice from a fixed list (see [`select`]).
    pub struct Select<T> {
        choices: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            self.choices[rng.gen_range(0..self.choices.len())].clone()
        }
    }

    /// Strategy drawing uniformly from `choices`.
    ///
    /// # Panics
    ///
    /// Panics at sampling time if `choices` is empty.
    pub fn select<T: Clone>(choices: Vec<T>) -> Select<T> {
        Select { choices }
    }
}

pub mod collection {
    //! Strategies for collections.

    use std::ops::Range;

    use super::strategy::Strategy;
    use super::TestRng;

    /// Strategy producing `Vec`s (see [`vec()`]).
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.start..self.size.end);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Strategy producing vectors of `element` with a length drawn from
    /// `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }
}

pub mod test_runner {
    //! Test-case configuration.

    /// Mirrors `proptest::test_runner::ProptestConfig`: only the number
    /// of cases is honoured by the stub.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases each property runs.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }
}

/// The deterministic generator handed to strategies.
#[derive(Debug)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// Seeds the case stream; each property test uses its own stream.
    pub fn new(seed: u64) -> Self {
        TestRng {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// Uniform sample from a half-open range.
    pub fn gen_range<T: rand::SampleUniform>(&mut self, range: std::ops::Range<T>) -> T {
        self.inner.gen_range(range)
    }
}

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude`.

    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// The `prop` shorthand module (`prop::sample::select`, ...).
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// Asserts a property-test condition (stub: plain `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality within a property test (stub: plain `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality within a property test (stub: plain `assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Declares property tests: each `fn name(arg in strategy, ...)` becomes
/// a `#[test]` that samples its arguments `cases` times.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!($config; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!($crate::test_runner::ProptestConfig::default(); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($config:expr;) => {};
    ($config:expr;
        $(#[$attr:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$attr])*
        fn $name() {
            let __config = $config;
            // Per-test deterministic seed, derived from the test name.
            let __seed = stringify!($name)
                .bytes()
                .fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
                    (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3)
                });
            let mut __rng = $crate::TestRng::new(__seed);
            for __case in 0..__config.cases {
                $(let $arg = $crate::strategy::Strategy::sample(&($strategy), &mut __rng);)+
                $body
            }
        }
        $crate::__proptest_impl!($config; $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u64..17, f in 0.25f64..0.75) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn select_draws_from_choices(d in prop::sample::select(vec![2u64, 4, 8])) {
            prop_assert!([2, 4, 8].contains(&d));
        }

        #[test]
        fn vec_strategy_respects_size(xs in crate::collection::vec(0usize..5, 1..9)) {
            prop_assert!(!xs.is_empty() && xs.len() < 9);
            prop_assert!(xs.iter().all(|&x| x < 5));
        }
    }
}
